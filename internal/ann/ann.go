// Package ann provides sub-linear approximate-nearest-neighbor leaf
// indexes over the kernel engine's SoA stores: an IVF (inverted-file)
// index whose k-means coarse quantizer prunes each query to a handful of
// cluster candidate lists, and two compressed point stores — int8
// scalar-quantized and product-quantized (PQ) — that score those candidates
// in 1/4 to 1/32 of the float32 memory, followed by an exact float32
// re-rank so final results stay exact-kernel-scored.
//
// The paper (§III) shows leaf-node compute dominates μSuite request
// latency; this package replaces the leaf's O(n) brute-force shard scan
// with an O(n·nprobe/nlist) candidate scan.  Every stage reuses the PR 5
// kernel machinery: the coarse quantizer trains through kmeans.
// TrainCentroids, centroid probing and the exact re-rank run on the SIMD
// norm-trick kernels and streaming top-k, and the compressed-store scans
// ride the same index-stealing parallel-for, so large leaves still use all
// cores inside one request.
//
// Builds are deterministic from Config.Seed: training samples are taken by
// fixed stride and every k-means descent is seeded, so the same corpus and
// config reproduce the identical index across runs.
package ann

import (
	"fmt"
	"sync"

	"musuite/internal/kernel"
	"musuite/internal/kmeans"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

// Quant selects the candidate-scoring store.
type Quant uint8

// The available quantizations.
const (
	// QuantNone scores candidates directly on the full float32 store —
	// the plain IVF index; no re-rank stage is needed.
	QuantNone Quant = iota
	// QuantInt8 scores candidates on the int8 scalar-quantized store
	// (≈4× smaller), then re-ranks the best approximately-scored
	// candidates exactly.
	QuantInt8
	// QuantPQ scores candidates on the product-quantized store with
	// ADC lookup-table distances (m bytes per point, ≈dim·4/m× smaller),
	// then re-ranks exactly.
	QuantPQ
)

func (q Quant) String() string {
	switch q {
	case QuantNone:
		return "none"
	case QuantInt8:
		return "int8"
	case QuantPQ:
		return "pq"
	}
	return fmt.Sprintf("quant(%d)", uint8(q))
}

// Config tunes an index build.
type Config struct {
	// NList is the coarse-quantizer cluster count (default √n, the
	// classic IVF rule).
	NList int
	// NProbe is the default number of clusters a search probes when the
	// caller passes 0 (default 8).  More probes trade latency for recall.
	NProbe int
	// Rerank is the default exact re-rank depth over approximately-scored
	// candidates when the caller passes 0 (default max(4k, 32)).  Only
	// meaningful with a compressed store.
	Rerank int
	// Quant selects the candidate-scoring store (default QuantNone).
	Quant Quant
	// PQM is the PQ subspace count; it must divide the dimensionality
	// (default: dim/8 when divisible, else the largest of dim/4, dim/2,
	// dim that divides evenly).
	PQM int
	// TrainSample caps the points each k-means trains on (default 16384);
	// sampling is by fixed stride so builds stay deterministic.
	TrainSample int
	// KMeansIters bounds the Lloyd sweeps per training run (default 10).
	KMeansIters int
	// Seed namespaces every k-means initialization in the build and the
	// HNSW level-assignment RNG.
	Seed int64

	// Kind selects the index family BuildKind constructs (default KindIVF).
	// The fields above configure the IVF kinds; the fields below configure
	// KindHNSW.
	Kind Kind
	// M is the HNSW per-node degree bound on upper layers; the base layer
	// allows 2M (default 16).
	M int
	// EFConstruction is the HNSW build-time beam width (default 200,
	// floored at M).  Wider beams cost build time and buy graph quality.
	EFConstruction int
	// EFSearch is the default HNSW query-time beam width when the caller
	// passes 0 (default 64).  It rides the same wire/admin knob slot as
	// the IVF kinds' nprobe.
	EFSearch int
}

func (cfg *Config) fill(n, dim int) error {
	if cfg.NList <= 0 {
		cfg.NList = isqrt(n)
	}
	if cfg.NList > n {
		cfg.NList = n
	}
	if cfg.NList < 1 {
		cfg.NList = 1
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = 8
	}
	if cfg.TrainSample <= 0 {
		cfg.TrainSample = 16384
	}
	if cfg.KMeansIters <= 0 {
		cfg.KMeansIters = 10
	}
	if cfg.Quant == QuantPQ {
		if cfg.PQM <= 0 {
			for _, m := range []int{dim / 8, dim / 4, dim / 2, dim} {
				if m > 0 && dim%m == 0 {
					cfg.PQM = m
					break
				}
			}
		}
		if cfg.PQM <= 0 || dim%cfg.PQM != 0 {
			return fmt.Errorf("ann: PQM %d does not divide dim %d", cfg.PQM, dim)
		}
	}
	return nil
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Index is a built IVF index over one leaf shard's store.  It references
// the store (for exact scoring and re-rank) rather than copying it.
type Index struct {
	store *kernel.Store // full-precision rows; exact scoring + re-rank
	cents *kernel.Store // coarse-quantizer centroids
	lists [][]uint32    // row IDs per centroid, ascending within each list

	quant Quant
	i8    *Int8Store
	pq    *PQStore

	defNProbe, defRerank int
}

// Build trains the coarse quantizer (and the configured compressed store)
// over the store's rows and assembles the inverted lists.  The store is
// captured, not copied.
func Build(store *kernel.Store, cfg Config) (*Index, error) {
	n, dim := store.Len(), store.Dim()
	x := &Index{store: store, quant: cfg.Quant}
	if n == 0 {
		return x, nil
	}
	if err := cfg.fill(n, dim); err != nil {
		return nil, err
	}
	x.defNProbe = cfg.NProbe
	x.defRerank = cfg.Rerank

	// Train the coarse quantizer on a strided sample — deterministic, and
	// far cheaper than clustering every row at μSuite corpus sizes.
	sample := sampleRows(store, cfg.TrainSample)
	centroids, _, err := kmeans.TrainCentroids(sample, kmeans.Config{
		K: cfg.NList, Iterations: cfg.KMeansIters, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	x.cents, err = kernel.BuildStore(centroids)
	if err != nil {
		return nil, err
	}

	// Assign every row to its nearest centroid on the SIMD dot kernel —
	// parallel over rows, then a serial deterministic list build.
	assign := make([]int32, n)
	nc := x.cents.Len()
	kernel.ParallelFor(kernel.Default().Parallelism(), n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row, rn := store.Row(i), store.Norm2(i)
			best, bestD := 0, float32(0)
			for c := 0; c < nc; c++ {
				d := rn + x.cents.Norm2(c) - 2*kernel.Dot(row, x.cents.Row(c))
				if c == 0 || d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = int32(best)
		}
	})
	x.lists = make([][]uint32, nc)
	for i, c := range assign {
		x.lists[c] = append(x.lists[c], uint32(i))
	}

	switch cfg.Quant {
	case QuantInt8:
		x.i8 = BuildInt8(store)
	case QuantPQ:
		x.pq, err = BuildPQ(store, PQConfig{
			M: cfg.PQM, TrainSample: cfg.TrainSample,
			KMeansIters: cfg.KMeansIters, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// sampleRows returns up to max rows by fixed stride, as vector views
// aliasing the store.
func sampleRows(s *kernel.Store, max int) []vec.Vector {
	n := s.Len()
	step := 1
	if n > max {
		step = (n + max - 1) / max
	}
	out := make([]vec.Vector, 0, (n+step-1)/step)
	for i := 0; i < n; i += step {
		out = append(out, vec.Vector(s.Row(i)))
	}
	return out
}

// NList reports the coarse-quantizer cluster count.
func (x *Index) NList() int { return len(x.lists) }

// Len reports the number of indexed rows.
func (x *Index) Len() int { return x.store.Len() }

// Dim reports the indexed dimensionality.
func (x *Index) Dim() int { return x.store.Dim() }

// Quant reports the candidate-scoring store kind.
func (x *Index) Quant() Quant { return x.quant }

// CompressedBytes reports the resident size of the compressed candidate
// store (0 for QuantNone, which scores on the full store directly).
func (x *Index) CompressedBytes() int {
	switch x.quant {
	case QuantInt8:
		return x.i8.Bytes()
	case QuantPQ:
		return x.pq.Bytes()
	}
	return 0
}

// --- search ---

// searchScratch recycles one search's intermediate state.
type searchScratch struct {
	cents  []knn.Neighbor // probed centroids
	ids    []uint32       // gathered candidate row IDs
	approx []knn.Neighbor // compressed-store scores
	rerank []uint32       // re-rank candidate row IDs
	lut    []float32      // PQ ADC lookup table
	heaps  []kernel.TopK  // per-worker heaps for the compressed scans
}

var searchScratches = sync.Pool{New: func() any { return new(searchScratch) }}

// Search appends the k nearest rows to the query (by squared Euclidean
// distance, ties by ID) among the members of the nprobe nearest clusters.
// nprobe ≤ 0 takes the build's default; nprobe ≥ NList scans every list,
// making the plain IVF index exactly equivalent to a brute-force scan.
// rerank bounds the exact re-rank depth over compressed-store candidates
// (≤ 0: build default, floor k); it is ignored by QuantNone, whose
// candidate scoring is already exact.  Final distances always come from the
// float32 kernels.
func (x *Index) Search(eng *kernel.Engine, q []float32, k, nprobe, rerank int, dst []knn.Neighbor) ([]knn.Neighbor, error) {
	if x.store.Len() == 0 {
		return dst, nil
	}
	if len(q) != x.store.Dim() {
		return dst, vec.ErrDimensionMismatch
	}
	if k <= 0 {
		return dst, nil
	}
	if nprobe <= 0 {
		nprobe = x.defNProbe
	}
	if nprobe > len(x.lists) {
		nprobe = len(x.lists)
	}

	sc := searchScratches.Get().(*searchScratch)
	defer searchScratches.Put(sc)

	// Probe: rank centroids on the engine's norm-trick kernel and gather
	// the nprobe nearest clusters' member lists.
	var err error
	sc.cents, err = eng.Scan(x.cents, q, nprobe, sc.cents[:0])
	if err != nil {
		return dst, err
	}
	sc.ids = sc.ids[:0]
	for _, c := range sc.cents {
		sc.ids = append(sc.ids, x.lists[c.ID]...)
	}

	if x.quant == QuantNone {
		// Plain IVF: the candidate lists feed the exact SIMD subset scan
		// directly (intra-request parallel-for, streaming top-k).
		return eng.ScanSubset(x.store, q, sc.ids, k, dst)
	}

	if rerank <= 0 {
		rerank = x.defRerank
	}
	if rerank <= 0 {
		rerank = 4 * k
		if rerank < 32 {
			rerank = 32
		}
	}
	if rerank < k {
		rerank = k
	}

	// Approximate pass: score every candidate on the compressed store,
	// keeping the rerank best.
	switch x.quant {
	case QuantInt8:
		sc.approx = x.i8.scanSubset(eng.Parallelism(), q, sc.ids, rerank, sc)
	case QuantPQ:
		sc.approx = x.pq.scanSubset(eng.Parallelism(), q, sc.ids, rerank, sc)
	}

	// Exact re-rank: the survivors go back through the float32 kernel, so
	// reported distances are exact and compression only affects which
	// candidates are considered, not how they are scored.
	sc.rerank = sc.rerank[:0]
	for _, n := range sc.approx {
		sc.rerank = append(sc.rerank, n.ID)
	}
	return eng.ScanSubset(x.store, q, sc.rerank, k, dst)
}

// scanHeaps sizes the scratch's per-worker heap set.
func (sc *searchScratch) scanHeaps(workers, k int) []kernel.TopK {
	if cap(sc.heaps) < workers {
		sc.heaps = make([]kernel.TopK, workers)
	} else {
		sc.heaps = sc.heaps[:workers]
	}
	for i := range sc.heaps {
		sc.heaps[i].Reset(k)
	}
	return sc.heaps
}

// mergeHeapsSorted folds heaps[1:] into heaps[0] and drains it sorted into
// dst.
func mergeHeapsSorted(heaps []kernel.TopK, dst []knn.Neighbor) []knn.Neighbor {
	for i := 1; i < len(heaps); i++ {
		heaps[0].Merge(&heaps[i])
	}
	return heaps[0].AppendSorted(dst)
}
