package ann

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

// HNSW is a hierarchical navigable-small-world graph over one leaf shard's
// kernel.Store — the graph half of the sub-linear leaf-index layer.  Where
// IVF prunes by coarse clusters (O(n·nprobe/nlist) candidates per query),
// HNSW descends a layered proximity graph: a greedy walk through sparse
// upper layers lands near the query, then a bounded-candidate beam search
// (efSearch) over the dense base layer collects the neighborhood.  Per-query
// work scales ~O(ef·degree·log n) distance evaluations, independent of the
// shard size — the regime that matters at the 10M+-vectors-per-leaf target,
// where IVF's recall/latency frontier flattens out.
//
// Every distance evaluated anywhere in the index — build-time beam searches,
// the neighbor-selection heuristic, query traversals, and the final top-k —
// routes through the kernel engine's norm-trick dot kernels (AVX2+FMA where
// the CPU has them) with streaming TopK threshold rejection.  The index
// stores no vectors: it references the SoA store it was built over.
//
// Adjacency lives in flat arena-allocated arrays (one []uint32 block per
// layer band, no per-node slices on the hot path): the base layer is a
// dense n×Mmax0 arena, and the sparse upper layers pack each node's bands
// contiguously via a prefix-sum offset table.  A search therefore chases no
// pointers — neighbor expansion is one bounds-checked slice of a flat block.
//
// Builds are parallel and deterministic; searches after Build are read-only
// and lock-free, so a drained leaf can keep serving during a warm handoff
// while its replacement builds.  See BuildHNSW for the construction scheme.
type HNSW struct {
	store *kernel.Store

	m     int // per-node degree bound on upper layers
	mmax0 int // base-layer degree bound (2·m, per Malkov-Yashunin)
	efCon int // construction beam width
	defEF int // search beam width when the caller passes 0

	// levels[i] is node i's upper-layer count (0 = base layer only),
	// assigned from the seeded RNG before any insertion so the graph's
	// layer structure is independent of build order and parallelism.
	levels []int32

	// Base-layer arena: node i's neighbors are l0[i*mmax0 : i*mmax0+l0n[i]].
	l0  []uint32
	l0n []int32

	// Upper-layer arenas: node i's layer-L (1-based) band is
	// up[(upOff[i]+L-1)*m : ...+upN[...]].  upOff is the prefix sum of
	// levels, so only nodes that reach a layer pay for slots there.
	upOff []int32
	up    []uint32
	upN   []int32

	entry    int32 // highest-level node, the search entry point
	maxLevel int32 // entry's upper-layer count

	scratch sync.Pool // *hnswScratch, sized to this index
}

// --- deterministic level assignment ---

// splitmix64 is the level-assignment RNG: one independent, well-mixed
// 64-bit draw per (seed, node) pair, so levels are a pure function of the
// build spec — no RNG stream to advance in insertion order, which is what
// lets the parallel build stay reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nodeLevel draws node i's upper-layer count: the geometric-like
// floor(-ln(U)·mL) of the paper, capped so a pathological draw cannot
// allocate an absurd tower.
func nodeLevel(seed int64, i int, mL float64) int32 {
	const maxTower = 30
	u := splitmix64(uint64(seed) ^ splitmix64(uint64(i)+0x51_7C_C1B7_2722_0A95))
	// 53 high bits → uniform in (0, 1]; the +1 excludes zero.
	f := (float64(u>>11) + 1) / (1 << 53)
	lvl := int32(-math.Log(f) * mL)
	if lvl > maxTower {
		lvl = maxTower
	}
	return lvl
}

// --- build ---

// spinLock is the per-node latch guarding a pending reciprocal-edge list
// during the parallel link phase.  Critical sections are a few appends, so
// spinning (with a Gosched backoff) beats parking a worker.
type spinLock struct{ v atomic.Uint32 }

func (l *spinLock) lock() {
	for !l.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}
func (l *spinLock) unlock() { l.v.Store(0) }

// pendEdge is one reciprocal edge discovered during a round's parallel
// search phase: src selected the owning node as a neighbor at layer.
type pendEdge struct {
	src   uint32
	layer int32
}

// pendList collects a node's incoming edges for the round under its own
// spinlock.
type pendList struct {
	lock  spinLock
	edges []pendEdge
}

// fillHNSW applies the HNSW config defaults.
func (cfg *Config) fillHNSW() error {
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.M < 2 {
		return fmt.Errorf("ann: hnsw M %d < 2", cfg.M)
	}
	if cfg.EFConstruction <= 0 {
		cfg.EFConstruction = 200
	}
	if cfg.EFConstruction < cfg.M {
		cfg.EFConstruction = cfg.M
	}
	if cfg.EFSearch <= 0 {
		cfg.EFSearch = 64
	}
	return nil
}

// BuildHNSW constructs the graph over the store's rows.  The store is
// captured, not copied.
//
// Construction is round-synchronized so it is both parallel and
// deterministic: nodes are appended to the graph in fixed-size rounds, and
// within a round every insertion's beam search runs against the frozen
// pre-round graph on the index-stealing parallel-for (the expensive part —
// all distance evaluations — is embarrassingly parallel).  Each insertion
// writes its own adjacency bands directly (nothing else touches them while
// the round's searches cannot reach in-round nodes) and records the
// reciprocal edges it owes its selected neighbors in per-node spinlocked
// pending lists.  A second parallel pass then folds each touched node's
// pending edges in — sorted by source ID, re-running the selection
// heuristic on overflow — so the final adjacency depends only on (corpus,
// config, seed), never on worker interleaving.  The level tower itself is
// drawn per node from the seeded splitmix64 stream before any insertion.
func BuildHNSW(store *kernel.Store, cfg Config) (*HNSW, error) {
	n := store.Len()
	if err := cfg.fillHNSW(); err != nil {
		return nil, err
	}
	h := &HNSW{
		store: store,
		m:     cfg.M,
		mmax0: 2 * cfg.M,
		efCon: cfg.EFConstruction,
		defEF: cfg.EFSearch,
		entry: -1,
	}
	h.scratch.New = func() any { return newHNSWScratch(n) }
	if n == 0 {
		return h, nil
	}

	// Levels first: a pure function of (seed, node), so the arena sizes and
	// the entry point are known before any insertion runs.
	mL := 1 / math.Log(float64(cfg.M))
	h.levels = make([]int32, n)
	h.upOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		h.levels[i] = nodeLevel(cfg.Seed, i, mL)
		h.upOff[i+1] = h.upOff[i] + h.levels[i]
	}
	h.l0 = make([]uint32, n*h.mmax0)
	h.l0n = make([]int32, n)
	totUp := int(h.upOff[n])
	h.up = make([]uint32, totUp*h.m)
	h.upN = make([]int32, totUp)

	// Node 0 seeds the graph; its tower sets the initial entry point.
	h.entry, h.maxLevel = 0, h.levels[0]

	pend := make([]pendList, n)
	par := kernel.Default().Parallelism()

	for done := 1; done < n; {
		// Round size: half the built prefix, capped.  In-round nodes cannot
		// select each other, so each round's blind spot is at most a third
		// of the graph it lands in — and the early rounds stay tiny (1, 1,
		// 2, 3, …) so the seed nodes cross-link densely, which is what
		// keeps the base layer connected.  The cap bounds the blind spot to
		// a sliver at corpus scale while still giving the parallel-for
		// thousands of independent beam searches per round.
		batch := done / 2
		if batch < 1 {
			batch = 1
		}
		if batch > hnswRoundCap {
			batch = hnswRoundCap
		}
		if batch > n-done {
			batch = n - done
		}

		// Phase A: every insertion in the round searches the frozen
		// pre-round graph and links itself outward.
		entry, maxLevel := h.entry, h.maxLevel
		kernel.ParallelFor(par, batch, func(_, lo, hi int) {
			sc := h.scratch.Get().(*hnswScratch)
			for idx := lo; idx < hi; idx++ {
				h.insert(done+idx, entry, maxLevel, pend, sc)
			}
			h.scratch.Put(sc)
		})

		// Phase B: fold the round's reciprocal edges into their targets —
		// one worker per target, additions applied in sorted source order,
		// heuristic re-selection on overflow.  Deterministic because the
		// edge multiset is fixed by phase A and each target is processed
		// alone.
		kernel.ParallelFor(par, done+batch, func(_, lo, hi int) {
			sc := h.scratch.Get().(*hnswScratch)
			for i := lo; i < hi; i++ {
				if len(pend[i].edges) > 0 {
					h.applyPending(i, &pend[i], sc)
				}
			}
			h.scratch.Put(sc)
		})

		// Entry update: the tallest tower wins; ties keep the earliest
		// node, so the entry point is deterministic too.
		for i := done; i < done+batch; i++ {
			if h.levels[i] > h.maxLevel {
				h.maxLevel = h.levels[i]
				h.entry = int32(i)
			}
		}
		done += batch
	}
	return h, nil
}

// hnswRoundCap bounds the in-round blind spot (nodes in the same round
// never select each other) to a sliver of the corpus at scale.
const hnswRoundCap = 4096

// insert runs one node's outward linking against the frozen graph: greedy
// descent through layers above its tower, then a beam search and heuristic
// selection per layer it occupies.  The node's own bands are written
// directly; the reciprocal edges are queued on the targets' spinlocked
// pending lists.
func (h *HNSW) insert(node int, entry int32, maxLevel int32, pend []pendList, sc *hnswScratch) {
	q := h.store.Row(node)
	qn := h.store.Norm2(node)

	ep := entry
	epD := kernel.DistAt(h.store, q, qn, int(ep))
	for L := maxLevel; L > h.levels[node]; L-- {
		ep, epD = h.greedy(q, qn, ep, epD, L)
	}

	top := min32(h.levels[node], maxLevel)
	for L := top; L >= 0; L-- {
		cands := h.searchLayer(q, qn, ep, epD, h.efCon, L, sc)
		sel := h.selectNeighbors(node, cands, h.m, sc)
		if L == 0 {
			base := node * h.mmax0
			h.l0n[node] = int32(copy(h.l0[base:base+h.mmax0], sel))
		} else {
			off := (int(h.upOff[node]) + int(L) - 1) * h.m
			h.upN[int(h.upOff[node])+int(L)-1] = int32(copy(h.up[off:off+h.m], sel))
		}
		for _, j := range sel {
			p := &pend[j]
			p.lock.lock()
			p.edges = append(p.edges, pendEdge{src: uint32(node), layer: L})
			p.lock.unlock()
		}
		if len(cands) > 0 {
			ep, epD = int32(cands[0].ID), cands[0].Distance
		}
	}
}

// applyPending folds one node's round-accumulated incoming edges into its
// adjacency bands, deterministically: per layer, additions merge in
// ascending source order; on overflow the selection heuristic re-picks the
// band from the union.
func (h *HNSW) applyPending(node int, p *pendList, sc *hnswScratch) {
	edges := p.edges
	p.edges = edges[:0]
	// Sort by (layer, src) — insertion order varies with worker timing,
	// the sorted order does not.  Lists are short; insertion sort avoids
	// an interface-boxed sort call.
	for i := 1; i < len(edges); i++ {
		e := edges[i]
		j := i - 1
		for j >= 0 && (edges[j].layer > e.layer || (edges[j].layer == e.layer && edges[j].src > e.src)) {
			edges[j+1] = edges[j]
			j--
		}
		edges[j+1] = e
	}
	for lo := 0; lo < len(edges); {
		hi := lo
		L := edges[lo].layer
		for hi < len(edges) && edges[hi].layer == L {
			hi++
		}
		h.mergeBand(node, L, edges[lo:hi], sc)
		lo = hi
	}
}

// mergeBand merges the sorted same-layer additions into node's layer-L band.
func (h *HNSW) mergeBand(node int, L int32, adds []pendEdge, sc *hnswScratch) {
	var band []uint32
	var cnt *int32
	var cap_ int
	if L == 0 {
		band = h.l0[node*h.mmax0 : (node+1)*h.mmax0]
		cnt = &h.l0n[node]
		cap_ = h.mmax0
	} else {
		slot := int(h.upOff[node]) + int(L) - 1
		band = h.up[slot*h.m : (slot+1)*h.m]
		cnt = &h.upN[slot]
		cap_ = h.m
	}
	n := int(*cnt)
	for _, e := range adds {
		if n < cap_ {
			band[n] = e.src
			n++
			continue
		}
		// Overflow: re-select the band from current ∪ remaining additions
		// with the same diversity heuristic insertions use.  Gather the
		// union with exact distances to the owning node, sorted.
		union := sc.union[:0]
		row, rn := h.store.Row(node), h.store.Norm2(node)
		seen := func(id uint32, list []knn.Neighbor) bool {
			for _, u := range list {
				if u.ID == id {
					return true
				}
			}
			return false
		}
		for _, id := range band[:n] {
			union = append(union, knn.Neighbor{ID: id, Distance: kernel.DistAt(h.store, row, rn, int(id))})
		}
		for _, a := range adds {
			if !seen(a.src, union) {
				union = append(union, knn.Neighbor{ID: a.src, Distance: kernel.DistAt(h.store, row, rn, int(a.src))})
			}
		}
		sortNeighbors(union)
		sc.union = union
		sel := h.selectNeighbors(node, union, cap_, sc)
		n = copy(band, sel)
		*cnt = int32(n)
		return
	}
	*cnt = int32(n)
}

// sortNeighbors orders by (distance, id) ascending — the engine's total
// order — with an insertion sort (bands and candidate lists are short).
func sortNeighbors(ns []knn.Neighbor) {
	for i := 1; i < len(ns); i++ {
		e := ns[i]
		j := i - 1
		for j >= 0 && (ns[j].Distance > e.Distance || (ns[j].Distance == e.Distance && ns[j].ID > e.ID)) {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = e
	}
}

// selectNeighbors is the Malkov-Yashunin diversity heuristic (Algorithm 4):
// walk the candidates in ascending distance to the base node and keep one
// only if it is closer to the base than to every neighbor already kept —
// pruning candidates that a kept neighbor already covers, which is what
// keeps the graph navigable across cluster boundaries.  Pruned candidates
// backfill unused slots (the keepPrunedConnections variant), so a node never
// wastes degree budget.  Pairwise distances run on the store's SIMD row
// kernel.  Candidates must arrive sorted by (distance, id); the result is
// deterministic.
func (h *HNSW) selectNeighbors(node int, cands []knn.Neighbor, k int, sc *hnswScratch) []uint32 {
	sel := sc.sel[:0]
	pruned := sc.pruned[:0]
	for _, c := range cands {
		if len(sel) >= k {
			break
		}
		if int(c.ID) == node {
			continue
		}
		keep := true
		for _, s := range sel {
			if kernel.RowDist(h.store, int(c.ID), int(s)) < c.Distance {
				keep = false
				break
			}
		}
		if keep {
			sel = append(sel, c.ID)
		} else {
			pruned = append(pruned, c.ID)
		}
	}
	for _, id := range pruned {
		if len(sel) >= k {
			break
		}
		sel = append(sel, id)
	}
	sc.sel, sc.pruned = sel, pruned[:0]
	return sel
}

// neighbors returns node's layer-L band as a view of the flat arena.
func (h *HNSW) neighbors(node int, L int32) []uint32 {
	if L == 0 {
		base := node * h.mmax0
		return h.l0[base : base+int(h.l0n[node])]
	}
	slot := int(h.upOff[node]) + int(L) - 1
	return h.up[slot*h.m : slot*h.m+int(h.upN[slot])]
}

// greedy is the upper-layer descent: hop to the strictly closest neighbor
// until no neighbor improves — the ef=1 walk of the paper.
func (h *HNSW) greedy(q []float32, qn float32, ep int32, epD float32, L int32) (int32, float32) {
	for {
		improved := false
		for _, nb := range h.neighbors(int(ep), L) {
			if d := kernel.DistAt(h.store, q, qn, int(nb)); d < epD {
				ep, epD = int32(nb), d
				improved = true
			}
		}
		if !improved {
			return ep, epD
		}
	}
}

// --- search scratch ---

// hnswScratch recycles one traversal's state: the visited bitmap, the
// candidate min-heap, the bounded result heap, and the band/selection
// buffers the build phases reuse.
type hnswScratch struct {
	// visited is one bit per node.  The bitmap costs an O(n/64) clear per
	// traversal (a 100k-node graph clears ~12.5 KB — noise next to one
	// beam's distance work), and in exchange the whole structure stays
	// cache-resident, so the per-neighbor membership probes on the beam's
	// hot path never contend with the vector rows for cache lines the way
	// a word-per-node epoch array does.
	visited []uint64
	cand    []knn.Neighbor // min-heap by (distance, id)
	top     kernel.TopK
	ids     []uint32
	union   []knn.Neighbor
	sel     []uint32
	pruned  []uint32
	nbrIDs  []uint32  // unvisited slice of the band being expanded
	nbrD    []float32 // their batched distances
}

func newHNSWScratch(n int) *hnswScratch {
	return &hnswScratch{visited: make([]uint64, (n+63)/64)}
}

// visit stamps node i, reporting whether it was already stamped.
func (sc *hnswScratch) visit(i uint32) bool {
	w, b := i>>6, uint64(1)<<(i&63)
	if sc.visited[w]&b != 0 {
		return true
	}
	sc.visited[w] |= b
	return false
}

// clearVisited resets the bitmap for a fresh traversal.
func (sc *hnswScratch) clearVisited() {
	for i := range sc.visited {
		sc.visited[i] = 0
	}
}

// candidate min-heap: nearest on top, ties by ID — the same total order as
// the engine's TopK, so traversal order (and with it the whole build) is
// deterministic.
func candLess(a, b knn.Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}

func (sc *hnswScratch) candPush(n knn.Neighbor) {
	sc.cand = append(sc.cand, n)
	h := sc.cand
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (sc *hnswScratch) candPop() knn.Neighbor {
	h := sc.cand
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.cand = h[:last]
	h = sc.cand
	i := 0
	for {
		best := i
		if l := 2*i + 1; l < last && candLess(h[l], h[best]) {
			best = l
		}
		if r := 2*i + 2; r < last && candLess(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// searchLayer is the bounded-candidate beam search (Algorithm 2): expand the
// nearest unexpanded candidate until none can beat the worst of the ef best
// found so far.  Every neighbor evaluation is one norm-trick SIMD distance
// plus a streaming TopK threshold test; the visited set is a cache-resident
// bitmap.  Returns the ef nearest found, sorted ascending, in sc.union.
func (h *HNSW) searchLayer(q []float32, qn float32, ep int32, epD float32, ef int, L int32, sc *hnswScratch) []knn.Neighbor {
	sc.clearVisited()
	sc.cand = sc.cand[:0]
	sc.top.Reset(ef)

	sc.visit(uint32(ep))
	sc.top.Consider(uint32(ep), epD)
	sc.candPush(knn.Neighbor{ID: uint32(ep), Distance: epD})

	for len(sc.cand) > 0 {
		c := sc.candPop()
		if c.Distance > sc.top.Threshold() {
			break
		}
		// Two passes over the band: first gather the unvisited neighbors
		// and batch their distances through one DistMany call — scattered
		// rows, independent iterations, so the cache misses overlap — then
		// apply the threshold/heap updates in band order.  Same distances,
		// same order, same results as the fused loop; only the misses land
		// concurrently instead of back to back.
		sc.nbrIDs = sc.nbrIDs[:0]
		for _, nb := range h.neighbors(int(c.ID), L) {
			if !sc.visit(nb) {
				sc.nbrIDs = append(sc.nbrIDs, nb)
			}
		}
		sc.nbrD = kernel.DistMany(h.store, q, qn, sc.nbrIDs, sc.nbrD[:0])
		for i, nb := range sc.nbrIDs {
			// Threshold returns +max until the heap fills, so this one
			// test is both "still filling" and "beats the worst kept".
			if d := sc.nbrD[i]; d <= sc.top.Threshold() {
				sc.top.Consider(nb, d)
				sc.candPush(knn.Neighbor{ID: nb, Distance: d})
			}
		}
	}
	sc.union = sc.top.AppendSorted(sc.union[:0])
	return sc.union
}

// --- public surface ---

// Len reports the number of indexed rows.
func (h *HNSW) Len() int { return h.store.Len() }

// Dim reports the indexed dimensionality.
func (h *HNSW) Dim() int { return h.store.Dim() }

// M reports the per-node degree bound (base layer allows 2M).
func (h *HNSW) M() int { return h.m }

// MaxLevel reports the entry point's upper-layer count.
func (h *HNSW) MaxLevel() int { return int(h.maxLevel) }

// CompressedBytes implements Searcher; HNSW keeps no compressed candidate
// store (all scoring is exact float32), so it reports 0.
func (h *HNSW) CompressedBytes() int { return 0 }

// GraphBytes reports the resident size of the adjacency arenas — the memory
// the graph adds on top of the vector store.
func (h *HNSW) GraphBytes() int {
	return 4 * (len(h.l0) + len(h.l0n) + len(h.up) + len(h.upN) + len(h.levels) + len(h.upOff))
}

// Fingerprint folds the complete graph structure — levels, adjacency bands,
// and entry point — into one FNV-1a hash, so tests can assert two builds
// are byte-identical without exporting the arenas.
func (h *HNSW) Fingerprint() uint64 {
	f := fnvNew()
	f = fnvInt(f, uint64(h.m))
	f = fnvInt(f, uint64(uint32(h.entry)))
	f = fnvInt(f, uint64(uint32(h.maxLevel)))
	for i, lv := range h.levels {
		f = fnvInt(f, uint64(uint32(lv)))
		f = fnvInt(f, uint64(uint32(h.l0n[i])))
		for _, nb := range h.neighbors(i, 0) {
			f = fnvInt(f, uint64(nb))
		}
		for L := int32(1); L <= lv; L++ {
			for _, nb := range h.neighbors(i, L) {
				f = fnvInt(f, uint64(nb))
			}
		}
	}
	return f
}

// Search appends the k nearest rows to the query (squared Euclidean, ties by
// ID) found by the graph traversal.  ef is the layer-0 beam width — the
// efSearch knob; ≤ 0 takes the build default, and it is floored at k.  The
// rerank knob is accepted for wire compatibility with the IVF kinds and
// ignored: every beam evaluation is already an exact float32 kernel
// distance.  The ef survivors go through the engine's subset scan for final
// selection, so reported distances come from the same accounted kernel path
// as every other leaf scan.  Search takes no locks: after Build the graph
// is immutable, so any number of searches proceed concurrently.
func (h *HNSW) Search(eng *kernel.Engine, q []float32, k, ef, _ int, dst []knn.Neighbor) ([]knn.Neighbor, error) {
	if h.store.Len() == 0 {
		return dst, nil
	}
	if len(q) != h.store.Dim() {
		return dst, vec.ErrDimensionMismatch
	}
	if k <= 0 {
		return dst, nil
	}
	if ef <= 0 {
		ef = h.defEF
	}
	if ef < k {
		ef = k
	}

	sc := h.scratch.Get().(*hnswScratch)
	qn := kernel.Dot(q, q)
	ep := h.entry
	epD := kernel.DistAt(h.store, q, qn, int(ep))
	for L := h.maxLevel; L >= 1; L-- {
		ep, epD = h.greedy(q, qn, ep, epD, L)
	}
	found := h.searchLayer(q, qn, ep, epD, ef, 0, sc)
	sc.ids = sc.ids[:0]
	for _, n := range found {
		sc.ids = append(sc.ids, n.ID)
	}
	dst, err := eng.ScanSubset(h.store, q, sc.ids, k, dst)
	h.scratch.Put(sc)
	return dst, err
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
