package ann

import (
	"fmt"
	"math"

	"musuite/internal/kernel"
	"musuite/internal/knn"
)

// Kind selects the index family a build constructs.
type Kind uint8

// The available index families.
const (
	// KindIVF is the inverted-file family: coarse-quantizer candidate
	// generation plus the Config.Quant scoring store.
	KindIVF Kind = iota
	// KindHNSW is the hierarchical navigable-small-world graph: sub-linear
	// beam-search traversal, exact float32 scoring throughout.
	KindHNSW
)

func (k Kind) String() string {
	switch k {
	case KindIVF:
		return "ivf"
	case KindHNSW:
		return "hnsw"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Searcher is the leaf-resident index contract the hdsearch leafann path
// serves behind: a built, read-only index answering bounded-candidate
// searches on the kernel engine.  *Index and *HNSW implement it.  The knob
// argument is the family's breadth control — nprobe for the IVF kinds,
// efSearch for HNSW — carried in the same wire slot so the admin retuning
// surface is shared.  rerank bounds the exact re-rank depth where the
// family scores approximately (IVF compressed stores); HNSW accepts and
// ignores it, since its traversal is already exact.
type Searcher interface {
	Search(eng *kernel.Engine, q []float32, k, knob, rerank int, dst []knn.Neighbor) ([]knn.Neighbor, error)
	Len() int
	Dim() int
	// CompressedBytes reports the resident compressed candidate store size
	// (0 where scoring is exact-only).
	CompressedBytes() int
	// Fingerprint folds the built structure into one hash, so
	// reproducibility tests can assert two builds are identical without
	// exporting internals.
	Fingerprint() uint64
}

var (
	_ Searcher = (*Index)(nil)
	_ Searcher = (*HNSW)(nil)
)

// BuildKind dispatches a build to the configured index family.
func BuildKind(store *kernel.Store, cfg Config) (Searcher, error) {
	switch cfg.Kind {
	case KindIVF:
		return Build(store, cfg)
	case KindHNSW:
		return BuildHNSW(store, cfg)
	}
	return nil, fmt.Errorf("ann: unknown index kind %v", cfg.Kind)
}

// --- structure fingerprints ---

// fnvNew/fnvInt are an inline FNV-1a over 64-bit words — enough to detect
// any structural divergence between two builds of the same spec.
func fnvNew() uint64 { return 0xcbf29ce484222325 }

func fnvInt(f, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		f ^= v & 0xff
		f *= 0x100000001b3
		v >>= 8
	}
	return f
}

func fnvFloat(f uint64, v float32) uint64 {
	return fnvInt(f, uint64(math.Float32bits(v)))
}

func (st *Int8Store) fingerprint(f uint64) uint64 {
	for _, c := range st.codes {
		f = fnvInt(f, uint64(uint8(c)))
	}
	for _, s := range st.scale {
		f = fnvFloat(f, s)
	}
	return f
}

func (st *PQStore) fingerprint(f uint64) uint64 {
	f = fnvInt(f, uint64(st.m))
	f = fnvInt(f, uint64(st.kc))
	for _, v := range st.codebook {
		f = fnvFloat(f, v)
	}
	for _, c := range st.codes {
		f = fnvInt(f, uint64(c))
	}
	return f
}

// Fingerprint folds the IVF structure — centroids, inverted lists, and the
// compressed store — into one FNV-1a hash.
func (x *Index) Fingerprint() uint64 {
	f := fnvNew()
	f = fnvInt(f, uint64(x.quant))
	if x.cents != nil {
		f = fnvInt(f, uint64(x.cents.Len()))
		for c := 0; c < x.cents.Len(); c++ {
			for _, v := range x.cents.Row(c) {
				f = fnvFloat(f, v)
			}
		}
	}
	f = fnvInt(f, uint64(len(x.lists)))
	for _, list := range x.lists {
		f = fnvInt(f, uint64(len(list)))
		for _, id := range list {
			f = fnvInt(f, uint64(id))
		}
	}
	switch x.quant {
	case QuantInt8:
		f = x.i8.fingerprint(f)
	case QuantPQ:
		f = x.pq.fingerprint(f)
	}
	return f
}
