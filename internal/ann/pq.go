package ann

import (
	"fmt"

	"musuite/internal/kernel"
	"musuite/internal/kmeans"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

// PQStore is a product-quantized mirror of a kernel.Store: the dimensions
// split into M contiguous subspaces, each with its own k-means codebook of
// up to 256 centroids, and every row compresses to M one-byte codes — dim/M
// × 4 bytes shrink to 1.  Query scoring is ADC (asymmetric distance
// computation): one ‖q_s − centroid‖² lookup table per subspace is built
// per query, after which each candidate's distance is M table lookups.
//
// The ADC distance is exactly ‖q − decode(row)‖² — the squared distance to
// the row's reconstruction — because the subspaces partition the
// dimensions.  The tests lean on that identity: ADC ≡ reconstruction
// distance within float tolerance, and |√ADC − √exact| ≤ ‖row −
// decode(row)‖ by the triangle inequality.
type PQStore struct {
	m      int // subspace count
	subDim int // dims per subspace
	kc     int // codebook entries per subspace (≤ 256)

	codebook []float32 // m × kc × subDim, flat
	codes    []uint8   // n × m
	n        int
	dim      int
}

// PQConfig tunes a PQ build.
type PQConfig struct {
	// M is the subspace count; it must divide the store dimensionality.
	M int
	// TrainSample caps the rows the per-subspace codebooks train on
	// (default 16384), sampled by fixed stride.
	TrainSample int
	// KMeansIters bounds the Lloyd sweeps per codebook (default 10).
	KMeansIters int
	// Seed namespaces the per-subspace k-means seeds.
	Seed int64
}

// BuildPQ trains the M subspace codebooks on a strided row sample and
// encodes every row (parallel over rows, deterministic output).
func BuildPQ(s *kernel.Store, cfg PQConfig) (*PQStore, error) {
	n, dim := s.Len(), s.Dim()
	if cfg.M <= 0 || dim%cfg.M != 0 {
		return nil, fmt.Errorf("ann: pq m=%d does not divide dim %d", cfg.M, dim)
	}
	if cfg.TrainSample <= 0 {
		cfg.TrainSample = 16384
	}
	if cfg.KMeansIters <= 0 {
		cfg.KMeansIters = 10
	}
	st := &PQStore{m: cfg.M, subDim: dim / cfg.M, n: n, dim: dim}

	// Train one codebook per subspace on sub-vector views of the sampled
	// rows (TrainCentroids never mutates its inputs, so views are safe).
	sample := sampleRows(s, cfg.TrainSample)
	st.kc = 256
	if st.kc > len(sample) {
		st.kc = len(sample)
	}
	st.codebook = make([]float32, st.m*st.kc*st.subDim)
	subViews := make([]vec.Vector, len(sample))
	for sub := 0; sub < st.m; sub++ {
		lo, hi := sub*st.subDim, (sub+1)*st.subDim
		for i, row := range sample {
			subViews[i] = row[lo:hi]
		}
		cents, _, err := kmeans.TrainCentroids(subViews, kmeans.Config{
			K:          st.kc,
			Iterations: cfg.KMeansIters,
			Seed:       cfg.Seed + int64(sub+1)*7919,
		})
		if err != nil {
			return nil, err
		}
		if len(cents) != st.kc {
			return nil, fmt.Errorf("ann: pq subspace %d trained %d centroids, want %d", sub, len(cents), st.kc)
		}
		for c, cent := range cents {
			copy(st.codebook[(sub*st.kc+c)*st.subDim:], cent)
		}
	}

	// Encode: nearest codebook entry per subspace, exact diff-squared on
	// the short sub-vectors.
	st.codes = make([]uint8, n*st.m)
	kernel.ParallelFor(kernel.Default().Parallelism(), n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := s.Row(i)
			for sub := 0; sub < st.m; sub++ {
				rv := row[sub*st.subDim : (sub+1)*st.subDim]
				best, bestD := 0, float32(0)
				for c := 0; c < st.kc; c++ {
					d := subDist2(rv, st.entry(sub, c))
					if c == 0 || d < bestD {
						best, bestD = c, d
					}
				}
				st.codes[i*st.m+sub] = uint8(best)
			}
		}
	})
	return st, nil
}

// entry returns subspace sub's centroid c.
func (st *PQStore) entry(sub, c int) []float32 {
	off := (sub*st.kc + c) * st.subDim
	return st.codebook[off : off+st.subDim]
}

// subDist2 is the exact squared distance on a sub-vector — short enough
// that diff-squared beats the norm trick's bookkeeping.
func subDist2(a, b []float32) float32 {
	var s float32
	b = b[:len(a)]
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Len reports the number of encoded rows.
func (st *PQStore) Len() int { return st.n }

// Dim reports the original row dimensionality.
func (st *PQStore) Dim() int { return st.dim }

// M reports the subspace count.
func (st *PQStore) M() int { return st.m }

// Bytes reports the resident size: one byte per (row, subspace) plus the
// shared codebooks.
func (st *PQStore) Bytes() int { return len(st.codes) + 4*len(st.codebook) }

// Decode appends row i's reconstruction (its codebook centroids,
// concatenated) to dst.
func (st *PQStore) Decode(i int, dst []float32) []float32 {
	for sub := 0; sub < st.m; sub++ {
		dst = append(dst, st.entry(sub, int(st.codes[i*st.m+sub]))...)
	}
	return dst
}

// lutInto builds the per-query ADC table — ‖q_s − centroid‖² for every
// (subspace, centroid) pair — into dst.  m×kc×subDim flops once per query,
// after which every candidate costs m lookups.
func (st *PQStore) lutInto(q []float32, dst []float32) []float32 {
	for sub := 0; sub < st.m; sub++ {
		qs := q[sub*st.subDim : (sub+1)*st.subDim]
		for c := 0; c < st.kc; c++ {
			dst = append(dst, subDist2(qs, st.entry(sub, c)))
		}
	}
	return dst
}

// adc sums row i's table entries: exactly ‖q − decode(i)‖².
func (st *PQStore) adc(lut []float32, i int) float32 {
	code := st.codes[i*st.m : (i+1)*st.m]
	var s float32
	for sub, c := range code {
		s += lut[sub*st.kc+int(c)]
	}
	return s
}

// ADC computes row i's ADC distance for the query from scratch — the
// test-facing form of the lookup-table path.
func (st *PQStore) ADC(q []float32, i int) float32 {
	var s float32
	for sub := 0; sub < st.m; sub++ {
		qs := q[sub*st.subDim : (sub+1)*st.subDim]
		s += subDist2(qs, st.entry(sub, int(st.codes[i*st.m+sub])))
	}
	return s
}

// scanSubset scores the candidate rows by ADC and returns the r best
// (ascending approximate distance) for the exact re-rank.
func (st *PQStore) scanSubset(par int, q []float32, ids []uint32, r int, sc *searchScratch) []knn.Neighbor {
	sc.lut = st.lutInto(q, sc.lut[:0])
	lut := sc.lut
	heaps := sc.scanHeaps(par, r)
	kernel.ParallelFor(par, len(ids), func(w, lo, hi int) {
		top := &heaps[w]
		thr := top.Threshold()
		for _, id := range ids[lo:hi] {
			if int(id) >= st.n {
				continue
			}
			d := st.adc(lut, int(id))
			if d <= thr {
				top.Consider(id, d)
				thr = top.Threshold()
			}
		}
	})
	return mergeHeapsSorted(heaps, sc.approx[:0])
}
