package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSquaredEuclideanBasic(t *testing.T) {
	a := Vector{0, 0, 0}
	b := Vector{3, 4, 0}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Fatalf("got %v want 25", got)
	}
	if got := Euclidean(a, b); got != 5 {
		t.Fatalf("got %v want 5", got)
	}
}

func TestSquaredEuclideanIdentityAndSymmetry(t *testing.T) {
	f := func(raw []float32) bool {
		// Clamp to a sane range so float error stays bounded.
		a := make(Vector, len(raw))
		b := make(Vector, len(raw))
		for i, r := range raw {
			v := float32(math.Mod(float64(r), 100))
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			a[i] = v
			b[i] = -v / 2
		}
		if SquaredEuclidean(a, a) != 0 {
			return false
		}
		return SquaredEuclidean(a, b) == SquaredEuclidean(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestUnrollMatchesNaive checks the 4-way unrolled kernels against a naive
// loop across lengths that hit every remainder case.
func TestUnrollMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 127, 128, 2048} {
		a, b := make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		var naiveSq, naiveDot float64
		for i := 0; i < n; i++ {
			d := float64(a[i] - b[i])
			naiveSq += d * d
			naiveDot += float64(a[i]) * float64(b[i])
		}
		if !almostEq(float64(SquaredEuclidean(a, b)), naiveSq, 1e-3+naiveSq*1e-4) {
			t.Errorf("n=%d sqdist mismatch: %v vs %v", n, SquaredEuclidean(a, b), naiveSq)
		}
		if !almostEq(float64(Dot(a, b)), naiveDot, 1e-3+math.Abs(naiveDot)*1e-4) {
			t.Errorf("n=%d dot mismatch: %v vs %v", n, Dot(a, b), naiveDot)
		}
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{0, 1}
	c := Vector{2, 0}
	d := Vector{-1, 0}
	if got := CosineSimilarity(a, b); !almostEq(float64(got), 0, 1e-6) {
		t.Errorf("orthogonal cos=%v", got)
	}
	if got := CosineSimilarity(a, c); !almostEq(float64(got), 1, 1e-6) {
		t.Errorf("parallel cos=%v", got)
	}
	if got := CosineSimilarity(a, d); !almostEq(float64(got), -1, 1e-6) {
		t.Errorf("antiparallel cos=%v", got)
	}
	if got := CosineSimilarity(a, Vector{0, 0}); got != 0 {
		t.Errorf("zero-vector cos=%v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	Normalize(v)
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Fatalf("norm after normalize = %v", Norm(v))
	}
	z := Vector{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector mutated")
	}
}

func TestAddScaleClone(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{10, 20, 30}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{11, 22, 33} {
		if sum[i] != want {
			t.Errorf("sum[%d]=%v", i, sum[i])
		}
	}
	if _, err := Add(a, Vector{1}); err != ErrDimensionMismatch {
		t.Errorf("want dimension mismatch, got %v", err)
	}
	s := Scale(a, 2)
	if s[2] != 6 {
		t.Errorf("scale=%v", s)
	}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases storage")
	}
}

func TestDistancesBatch(t *testing.T) {
	q := Vector{0, 0}
	pts := []Vector{{1, 0}, {0, 2}, {3, 4}}
	d, err := Distances(q, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 4, 25}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d]=%v want %v", i, d[i], want[i])
		}
	}
	// Appending into an existing buffer must preserve prior entries.
	d2, err := Distances(q, pts[:1], []float32{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 2 || d2[0] != 7 || d2[1] != 1 {
		t.Errorf("append behavior broken: %v", d2)
	}
	// Ragged input is rejected before any distance is appended.
	if _, err := Distances(q, []Vector{{1, 0}, {1}}, nil); err != ErrDimensionMismatch {
		t.Errorf("ragged input: want ErrDimensionMismatch, got %v", err)
	}
}

// TestKernelsPanicOnMismatch: the hot kernels refuse to silently truncate.
func TestKernelsPanicOnMismatch(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on dimension mismatch", name)
			}
		}()
		f()
	}
	mustPanic("SquaredEuclidean", func() { SquaredEuclidean(Vector{1, 2}, Vector{1}) })
	mustPanic("Dot", func() { Dot(Vector{1}, Vector{1, 2}) })
}

// TestTriangleInequality: Euclidean distance satisfies d(a,c) ≤ d(a,b)+d(b,c).
func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		a, b, c := make(Vector, n), make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.Float32(), rng.Float32(), rng.Float32()
		}
		ac := float64(Euclidean(a, c))
		abc := float64(Euclidean(a, b)) + float64(Euclidean(b, c))
		if ac > abc+1e-4 {
			t.Fatalf("triangle inequality violated: %v > %v", ac, abc)
		}
	}
}

func BenchmarkSquaredEuclidean2048(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a, c := make(Vector, 2048), make(Vector, 2048)
	for i := range a {
		a[i], c[i] = rng.Float32(), rng.Float32()
	}
	b.SetBytes(2048 * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SquaredEuclidean(a, c)
	}
}

func BenchmarkDot128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a, c := make(Vector, 128), make(Vector, 128)
	for i := range a {
		a[i], c[i] = rng.Float32(), rng.Float32()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(a, c)
	}
}
