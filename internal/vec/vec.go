// Package vec provides the feature-vector math underlying HDSearch: dense
// float32 vectors, Euclidean / cosine / dot-product kernels with 4-way
// unrolled inner loops (the scalar analog of the paper's SIMD acceleration),
// and batch distance computations used by the leaf microservice.
package vec

import (
	"errors"
	"math"
)

// Vector is a dense feature vector, e.g. a 2048-dimensional image embedding.
type Vector []float32

// ErrDimensionMismatch reports an operation on vectors of unequal length.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// SquaredEuclidean returns ‖a-b‖² with a 4-way unrolled loop.  Using the
// squared distance avoids the sqrt in the inner comparison loop; ordering by
// squared distance equals ordering by distance.  The vectors must have equal
// length; unequal lengths panic rather than silently truncating to the
// shorter vector (callers validate dimensions once at store-build or decode
// time, so a mismatch reaching this loop is a bug, not an input error).
func SquaredEuclidean(a, b Vector) float32 {
	n := len(a)
	if len(b) != n {
		panic("vec: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Euclidean returns ‖a-b‖.
func Euclidean(a, b Vector) float32 {
	return float32(math.Sqrt(float64(SquaredEuclidean(a, b))))
}

// Dot returns a·b with a 4-way unrolled loop.  Like SquaredEuclidean it
// panics on unequal lengths instead of truncating.
func Dot(a, b Vector) float32 {
	n := len(a)
	if len(b) != n {
		panic("vec: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns ‖v‖.
func Norm(v Vector) float32 {
	return float32(math.Sqrt(float64(Dot(v, v))))
}

// CosineSimilarity returns a·b / (‖a‖‖b‖), the accuracy metric HDSearch uses
// to score its reported nearest neighbor against brute-force ground truth.
// Zero vectors yield similarity 0.
func CosineSimilarity(a, b Vector) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales v to unit length in place and returns it.  A zero vector
// is returned unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Add returns a+b in a new vector.
func Add(a, b Vector) (Vector, error) {
	if len(a) != len(b) {
		return nil, ErrDimensionMismatch
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// Scale returns s·v in a new vector.
func Scale(v Vector, s float32) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Distances computes the squared Euclidean distance from query to each of
// points, appending into dst (which may be nil).  Ragged input — any point
// whose length differs from the query's — is rejected with
// ErrDimensionMismatch before any distance is appended.  This is the scalar
// reference for the leaf's hot loop; the kernel package holds the tuned
// version.
func Distances(query Vector, points []Vector, dst []float32) ([]float32, error) {
	for _, p := range points {
		if len(p) != len(query) {
			return dst, ErrDimensionMismatch
		}
	}
	if dst == nil {
		dst = make([]float32, 0, len(points))
	}
	for _, p := range points {
		dst = append(dst, SquaredEuclidean(query, p))
	}
	return dst, nil
}
