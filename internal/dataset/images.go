// Package dataset provides the seeded synthetic datasets that stand in for
// the paper's corpora: Gaussian-mixture feature vectors for Google Open
// Images (HDSearch), a Zipf-popularity key/value trace for the "Twitter"
// dataset with a YCSB-A operation mix (Router), Zipf-worded documents for
// the Wikipedia corpus (Set Algebra), and a latent-factor rating matrix for
// MovieLens (Recommend).
//
// Every generator is deterministic from its seed, so experiments are exactly
// reproducible, and every generator preserves the statistical property the
// corresponding benchmark's algorithm depends on (cluster locality for LSH,
// skew for caching, Zipf word frequencies for posting lists, low-rank
// structure for collaborative filtering).
package dataset

import (
	"fmt"
	"math/rand"

	"musuite/internal/vec"
)

// ImageCorpus is a synthetic stand-in for Inception-V3 feature vectors of an
// image repository.  Points are drawn from a mixture of Gaussian clusters so
// nearby points share cluster membership — the locality structure that makes
// LSH indexing effective.
type ImageCorpus struct {
	// Vectors holds one feature vector per image, indexed by point ID.
	Vectors []vec.Vector
	// Dim is the feature dimensionality.
	Dim int
	// ClusterOf records the generating cluster of each point (useful for
	// sanity checks; a real corpus has no such labels).
	ClusterOf []int
	centers   []vec.Vector
	noise     float64
	seed      int64
}

// ImageCorpusConfig parameterizes corpus generation.
type ImageCorpusConfig struct {
	// N is the number of images (paper: 500K; tests use much less).
	N int
	// Dim is the feature dimension (paper: 2048; tests often use 64-128).
	Dim int
	// Clusters is the number of Gaussian mixture components.
	Clusters int
	// Noise is the intra-cluster standard deviation (default 0.15).
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

// NewImageCorpus generates a corpus.
func NewImageCorpus(cfg ImageCorpusConfig) *ImageCorpus {
	if cfg.N <= 0 || cfg.Dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid image corpus config %+v", cfg))
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 16
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 0.15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]vec.Vector, cfg.Clusters)
	for c := range centers {
		centers[c] = make(vec.Vector, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			centers[c][d] = float32(rng.Float64()*2 - 1)
		}
	}
	corpus := &ImageCorpus{
		Vectors:   make([]vec.Vector, cfg.N),
		Dim:       cfg.Dim,
		ClusterOf: make([]int, cfg.N),
		centers:   centers,
		noise:     cfg.Noise,
		seed:      cfg.Seed,
	}
	for i := 0; i < cfg.N; i++ {
		c := rng.Intn(cfg.Clusters)
		corpus.ClusterOf[i] = c
		v := make(vec.Vector, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			v[d] = centers[c][d] + float32(rng.NormFloat64()*cfg.Noise)
		}
		corpus.Vectors[i] = v
	}
	return corpus
}

// Queries generates n query vectors that perturb random corpus points, the
// way a user's query image resembles — but does not equal — stored images.
func (c *ImageCorpus) Queries(n int, seed int64) []vec.Vector {
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	out := make([]vec.Vector, n)
	for i := 0; i < n; i++ {
		base := c.Vectors[rng.Intn(len(c.Vectors))]
		q := make(vec.Vector, c.Dim)
		for d := 0; d < c.Dim; d++ {
			q[d] = base[d] + float32(rng.NormFloat64()*c.noise*0.5)
		}
		out[i] = q
	}
	return out
}

// Shard splits point IDs round-robin across n leaf shards, returning for
// each shard the list of global point IDs it owns.  Round-robin keeps shard
// loads balanced regardless of corpus ordering.
func (c *ImageCorpus) Shard(n int) [][]int {
	if n < 1 {
		n = 1
	}
	shards := make([][]int, n)
	for id := range c.Vectors {
		s := id % n
		shards[s] = append(shards[s], id)
	}
	return shards
}
