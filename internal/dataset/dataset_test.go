package dataset

import (
	"math"
	"testing"

	"musuite/internal/vec"
)

func TestImageCorpusDeterministic(t *testing.T) {
	cfg := ImageCorpusConfig{N: 100, Dim: 16, Clusters: 4, Seed: 7}
	a := NewImageCorpus(cfg)
	b := NewImageCorpus(cfg)
	for i := range a.Vectors {
		for d := range a.Vectors[i] {
			if a.Vectors[i][d] != b.Vectors[i][d] {
				t.Fatalf("non-deterministic at point %d dim %d", i, d)
			}
		}
	}
	c := NewImageCorpus(ImageCorpusConfig{N: 100, Dim: 16, Clusters: 4, Seed: 8})
	if a.Vectors[0][0] == c.Vectors[0][0] && a.Vectors[1][0] == c.Vectors[1][0] {
		t.Fatal("seed ignored")
	}
}

func TestImageCorpusClusterLocality(t *testing.T) {
	// Points in the same cluster must on average be closer than points in
	// different clusters — the property LSH exploits.
	c := NewImageCorpus(ImageCorpusConfig{N: 400, Dim: 32, Clusters: 8, Noise: 0.1, Seed: 1})
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			d := float64(vec.Euclidean(c.Vectors[i], c.Vectors[j]))
			if c.ClusterOf[i] == c.ClusterOf[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Skip("degenerate cluster assignment")
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Fatalf("no cluster locality: intra=%v inter=%v", intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestImageCorpusQueriesNearCorpus(t *testing.T) {
	c := NewImageCorpus(ImageCorpusConfig{N: 200, Dim: 16, Clusters: 4, Noise: 0.1, Seed: 2})
	qs := c.Queries(20, 3)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q) != c.Dim {
			t.Fatal("query dimension mismatch")
		}
		best := float32(math.MaxFloat32)
		for _, v := range c.Vectors {
			if d := vec.Euclidean(q, v); d < best {
				best = d
			}
		}
		// A perturbed corpus point should be close to something.
		if best > 2 {
			t.Fatalf("query too far from corpus: %v", best)
		}
	}
}

func TestImageCorpusShard(t *testing.T) {
	c := NewImageCorpus(ImageCorpusConfig{N: 103, Dim: 4, Seed: 3})
	shards := c.Shard(4)
	total := 0
	seen := make(map[int]bool)
	for _, s := range shards {
		total += len(s)
		for _, id := range s {
			if seen[id] {
				t.Fatalf("point %d in two shards", id)
			}
			seen[id] = true
		}
	}
	if total != 103 {
		t.Fatalf("sharded %d of 103", total)
	}
	for i, s := range shards {
		if len(s) < 25 || len(s) > 26 {
			t.Errorf("shard %d has %d points (imbalanced)", i, len(s))
		}
	}
}

func TestKVTraceMixAndSkew(t *testing.T) {
	tr := NewKVTrace(KVTraceConfig{Keys: 1000, ValueSize: 64, GetFraction: 0.5, Seed: 4})
	ops := tr.Ops(10000)
	gets, sets := 0, 0
	keyCount := make(map[string]int)
	for _, op := range ops {
		if op.Kind == KVGet {
			gets++
			if op.Value != nil {
				t.Fatal("get carries a value")
			}
		} else {
			sets++
			if len(op.Value) != 64 {
				t.Fatalf("set value len=%d", len(op.Value))
			}
		}
		keyCount[op.Key]++
	}
	frac := float64(gets) / float64(gets+sets)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("get fraction=%v want ≈0.5", frac)
	}
	// Zipf skew: the hottest key should take far more than 1/Keys share.
	max := 0
	for _, n := range keyCount {
		if n > max {
			max = n
		}
	}
	if float64(max)/10000 < 0.05 {
		t.Errorf("hottest key share=%v, trace not skewed", float64(max)/10000)
	}
}

func TestKVWarmupCoversAllKeys(t *testing.T) {
	tr := NewKVTrace(KVTraceConfig{Keys: 50, Seed: 5})
	warm := tr.WarmupSets()
	if len(warm) != 50 {
		t.Fatalf("warmup=%d", len(warm))
	}
	seen := make(map[string]bool)
	for _, op := range warm {
		if op.Kind != KVSet {
			t.Fatal("warmup op is not a set")
		}
		seen[op.Key] = true
	}
	if len(seen) != 50 {
		t.Fatalf("warmup covers %d keys", len(seen))
	}
}

func TestDocCorpusZipfStopWords(t *testing.T) {
	c := NewDocCorpus(DocCorpusConfig{Docs: 500, VocabSize: 2000, MeanDocLen: 80, Seed: 6})
	if len(c.Docs) != 500 {
		t.Fatalf("docs=%d", len(c.Docs))
	}
	freq := make(map[int]int)
	total := 0
	for _, doc := range c.Docs {
		if len(doc) == 0 {
			t.Fatal("empty document")
		}
		for _, w := range doc {
			if w < 0 || w >= c.VocabSize {
				t.Fatalf("word %d out of vocab", w)
			}
			freq[w]++
			total++
		}
	}
	// Zipf: the most frequent word must dominate (>5% of tokens) — the
	// property that makes stop-listing worthwhile.
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	if float64(max)/float64(total) < 0.05 {
		t.Errorf("top word share=%v, not Zipf-like", float64(max)/float64(total))
	}
}

func TestDocQueries(t *testing.T) {
	c := NewDocCorpus(DocCorpusConfig{Docs: 100, VocabSize: 500, Seed: 7})
	qs := c.Queries(200, 10, 8)
	if len(qs) != 200 {
		t.Fatalf("queries=%d", len(qs))
	}
	for _, q := range qs {
		if len(q) < 1 || len(q) > 10 {
			t.Fatalf("query length %d outside 1..10", len(q))
		}
		seen := make(map[int]bool)
		for _, w := range q {
			if seen[w] {
				t.Fatal("duplicate term in query")
			}
			seen[w] = true
		}
	}
}

func TestDocShardUniform(t *testing.T) {
	c := NewDocCorpus(DocCorpusConfig{Docs: 101, Seed: 9})
	shards := c.Shard(4)
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != 101 {
		t.Fatalf("sharded %d of 101", total)
	}
}

func TestRatingCorpusShape(t *testing.T) {
	c := NewRatingCorpus(RatingCorpusConfig{Users: 50, Items: 80, Ratings: 1000, Seed: 10})
	if len(c.Ratings) != 1000 {
		t.Fatalf("ratings=%d", len(c.Ratings))
	}
	perUser := make(map[int]int)
	for _, r := range c.Ratings {
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 80 {
			t.Fatalf("rating out of range: %+v", r)
		}
		if r.Value < 1 || r.Value > 5 {
			t.Fatalf("rating value %v outside 1..5", r.Value)
		}
		perUser[r.User]++
	}
	// Every user has ≥1 rating (no cold start).
	for u := 0; u < 50; u++ {
		if perUser[u] == 0 {
			t.Fatalf("user %d has no ratings", u)
		}
	}
}

func TestRatingCorpusNoDuplicates(t *testing.T) {
	c := NewRatingCorpus(RatingCorpusConfig{Users: 20, Items: 20, Ratings: 300, Seed: 11})
	seen := make(map[[2]int]bool)
	for _, r := range c.Ratings {
		k := [2]int{r.User, r.Item}
		if seen[k] {
			t.Fatalf("duplicate rating for %v", k)
		}
		seen[k] = true
		if !c.Rated(r.User, r.Item) {
			t.Fatal("Rated() disagrees with Ratings")
		}
	}
}

func TestRatingQueryPairsUnrated(t *testing.T) {
	c := NewRatingCorpus(RatingCorpusConfig{Users: 30, Items: 40, Ratings: 400, Seed: 12})
	pairs := c.QueryPairs(100, 13)
	if len(pairs) != 100 {
		t.Fatalf("pairs=%d", len(pairs))
	}
	for _, p := range pairs {
		if c.Rated(p[0], p[1]) {
			t.Fatalf("query pair %v was trained on", p)
		}
	}
}

func TestRatingShardByItem(t *testing.T) {
	c := NewRatingCorpus(RatingCorpusConfig{Users: 30, Items: 40, Ratings: 500, Seed: 14})
	shards := c.ShardByItem(4)
	total := 0
	for s, ratings := range shards {
		total += len(ratings)
		for _, r := range ratings {
			if r.Item%4 != s {
				t.Fatalf("rating for item %d landed in shard %d", r.Item, s)
			}
		}
	}
	if total != 500 {
		t.Fatalf("sharded %d of 500", total)
	}
}

func TestRatingsCappedAtMatrixSize(t *testing.T) {
	c := NewRatingCorpus(RatingCorpusConfig{Users: 5, Items: 5, Ratings: 100, Seed: 15})
	if len(c.Ratings) != 25 {
		t.Fatalf("ratings=%d want 25 (full matrix)", len(c.Ratings))
	}
}
