package dataset

import (
	"testing"
)

// Determinism is what makes multi-process deployment work without dataset
// files: every tier regenerates identical corpora from the seed.  These
// tests pin that property for each generator.

func TestDocCorpusDeterministic(t *testing.T) {
	cfg := DocCorpusConfig{Docs: 200, VocabSize: 800, MeanDocLen: 40, Seed: 21}
	a, b := NewDocCorpus(cfg), NewDocCorpus(cfg)
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("doc counts differ")
	}
	for i := range a.Docs {
		if len(a.Docs[i]) != len(b.Docs[i]) {
			t.Fatalf("doc %d lengths differ", i)
		}
		for j := range a.Docs[i] {
			if a.Docs[i][j] != b.Docs[i][j] {
				t.Fatalf("doc %d word %d differs", i, j)
			}
		}
	}
	// Query generation is independently deterministic.
	qa, qb := a.Queries(50, 8, 3), b.Queries(50, 8, 3)
	for i := range qa {
		if len(qa[i]) != len(qb[i]) {
			t.Fatalf("query %d lengths differ", i)
		}
		for j := range qa[i] {
			if qa[i][j] != qb[i][j] {
				t.Fatalf("query %d term %d differs", i, j)
			}
		}
	}
}

func TestRatingCorpusDeterministic(t *testing.T) {
	cfg := RatingCorpusConfig{Users: 40, Items: 50, Ratings: 800, Seed: 22}
	a, b := NewRatingCorpus(cfg), NewRatingCorpus(cfg)
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatal("rating counts differ")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs: %+v vs %+v", i, a.Ratings[i], b.Ratings[i])
		}
	}
	pa, pb := a.QueryPairs(30, 5), b.QueryPairs(30, 5)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestKVTraceDeterministic(t *testing.T) {
	cfg := KVTraceConfig{Keys: 100, ValueSize: 16, Seed: 23}
	a, b := NewKVTrace(cfg), NewKVTrace(cfg)
	opsA, opsB := a.Ops(300), b.Ops(300)
	for i := range opsA {
		if opsA[i].Kind != opsB[i].Kind || opsA[i].Key != opsB[i].Key {
			t.Fatalf("op %d differs", i)
		}
		if string(opsA[i].Value) != string(opsB[i].Value) {
			t.Fatalf("op %d values differ", i)
		}
	}
}

func TestShardRoundRobinBalanced(t *testing.T) {
	c := NewRatingCorpus(RatingCorpusConfig{Users: 30, Items: 30, Ratings: 401, Seed: 24})
	shards := c.ShardRoundRobin(4)
	total := 0
	for _, s := range shards {
		total += len(s)
		if len(s) < 100 || len(s) > 101 {
			t.Fatalf("shard size %d imbalanced", len(s))
		}
	}
	if total != 401 {
		t.Fatalf("sharded %d of 401", total)
	}
	// Every shard sees (nearly) the full user range under round-robin —
	// the property Recommend's averaging mid-tier depends on.
	for si, s := range shards {
		users := make(map[int]bool)
		for _, r := range s {
			users[r.User] = true
		}
		if len(users) < c.Users/2 {
			t.Fatalf("shard %d covers only %d of %d users", si, len(users), c.Users)
		}
	}
}
