package dataset

import (
	"math/rand"
)

// Rating is one {user, item, rating} tuple of the Recommend workload.
type Rating struct {
	User, Item int
	Value      float64
}

// RatingCorpus is a synthetic stand-in for the MovieLens dataset: a sparse
// user-item rating matrix with planted low-rank (latent factor) structure,
// so matrix factorization genuinely recovers signal rather than noise.
type RatingCorpus struct {
	// Ratings holds the observed tuples.
	Ratings []Rating
	// Users and Items are the matrix dimensions.
	Users, Items int
	// Rank is the planted latent dimensionality.
	Rank int

	userF, itemF [][]float64
	rated        map[[2]int]bool
	seed         int64
}

// RatingCorpusConfig parameterizes generation.
type RatingCorpusConfig struct {
	// Users and Items size the matrix (paper: MovieLens with 10K tuples).
	Users, Items int
	// Ratings is the number of observed tuples.
	Ratings int
	// Rank is the planted latent dimension (default 6).
	Rank int
	// Noise is the rating noise stddev (default 0.3).
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c RatingCorpusConfig) withDefaults() RatingCorpusConfig {
	if c.Users <= 0 {
		c.Users = 200
	}
	if c.Items <= 0 {
		c.Items = 300
	}
	if c.Ratings <= 0 {
		c.Ratings = 5000
	}
	if c.Rank <= 0 {
		c.Rank = 6
	}
	if c.Noise <= 0 {
		c.Noise = 0.3
	}
	max := c.Users * c.Items
	if c.Ratings > max {
		c.Ratings = max
	}
	return c
}

// NewRatingCorpus generates a rating corpus.  Every user receives at least
// one rating (the paper sidesteps the cold-start problem the same way).
func NewRatingCorpus(cfg RatingCorpusConfig) *RatingCorpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	userF := make([][]float64, cfg.Users)
	for u := range userF {
		userF[u] = make([]float64, cfg.Rank)
		for k := range userF[u] {
			userF[u][k] = rng.Float64()
		}
	}
	itemF := make([][]float64, cfg.Items)
	for i := range itemF {
		itemF[i] = make([]float64, cfg.Rank)
		for k := range itemF[i] {
			itemF[i][k] = rng.Float64()
		}
	}

	c := &RatingCorpus{
		Users: cfg.Users, Items: cfg.Items, Rank: cfg.Rank,
		userF: userF, itemF: itemF,
		rated: make(map[[2]int]bool, cfg.Ratings),
		seed:  cfg.Seed,
	}

	rate := func(u, i int) {
		c.rated[[2]int{u, i}] = true
		c.Ratings = append(c.Ratings, Rating{User: u, Item: i, Value: c.trueRating(u, i, rng, cfg.Noise)})
	}

	// Coverage pass: one rating per user.
	for u := 0; u < cfg.Users && len(c.Ratings) < cfg.Ratings; u++ {
		rate(u, rng.Intn(cfg.Items))
	}
	// Fill pass: random cells until the target density.
	for len(c.Ratings) < cfg.Ratings {
		u, i := rng.Intn(cfg.Users), rng.Intn(cfg.Items)
		if !c.rated[[2]int{u, i}] {
			rate(u, i)
		}
	}
	return c
}

// trueRating maps the latent dot product plus noise onto the 1..5 star scale.
func (c *RatingCorpus) trueRating(u, i int, rng *rand.Rand, noise float64) float64 {
	dot := 0.0
	for k := 0; k < c.Rank; k++ {
		dot += c.userF[u][k] * c.itemF[i][k]
	}
	// dot ∈ [0, Rank); rescale to roughly 1..5.
	r := 1 + 4*dot/float64(c.Rank) + rng.NormFloat64()*noise
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}

// Rated reports whether cell (u, i) has an observed rating.
func (c *RatingCorpus) Rated(u, i int) bool { return c.rated[[2]int{u, i}] }

// QueryPairs samples n {user, item} pairs from the empty cells of the
// utility matrix — the paper always queries cells the system did not train
// on.
func (c *RatingCorpus) QueryPairs(n int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed ^ 0x2545F491))
	out := make([][2]int, 0, n)
	for len(out) < n {
		u, i := rng.Intn(c.Users), rng.Intn(c.Items)
		if !c.Rated(u, i) {
			out = append(out, [2]int{u, i})
		}
	}
	return out
}

// ShardRoundRobin splits the rating tuples round-robin across n leaves.
// Every leaf sees the full user and item ranges but only a sparser sample of
// cells, so each can independently predict any {user, item} pair and the
// mid-tier can average the leaves' predictions — the paper's Recommend
// topology.
func (c *RatingCorpus) ShardRoundRobin(n int) [][]Rating {
	if n < 1 {
		n = 1
	}
	shards := make([][]Rating, n)
	for i, r := range c.Ratings {
		shards[i%n] = append(shards[i%n], r)
	}
	return shards
}

// ShardByItem splits ratings across n leaves by item ID, so each leaf
// factorizes and serves its own shard of the utility matrix.
func (c *RatingCorpus) ShardByItem(n int) [][]Rating {
	if n < 1 {
		n = 1
	}
	shards := make([][]Rating, n)
	for _, r := range c.Ratings {
		s := r.Item % n
		shards[s] = append(shards[s], r)
	}
	return shards
}
