package dataset

import (
	"fmt"
	"math/rand"
)

// KVOpKind distinguishes reads from writes in a key-value trace.
type KVOpKind int

const (
	// KVGet reads a key.
	KVGet KVOpKind = iota
	// KVSet writes a key-value pair.
	KVSet
)

// KVOp is one operation of the Router workload.
type KVOp struct {
	Kind  KVOpKind
	Key   string
	Value []byte
}

// KVTraceConfig parameterizes the synthetic "Twitter" key-value trace.
// The paper drives Router with keys from an open-source Twitter dataset and
// a 50/50 get/set mix mimicking YCSB Workload A.
type KVTraceConfig struct {
	// Keys is the size of the key population.
	Keys int
	// ValueSize is the value payload length in bytes.
	ValueSize int
	// GetFraction is the probability an op is a get (YCSB-A: 0.5).
	GetFraction float64
	// ZipfS is the Zipf skew of key popularity (>1; default 1.1,
	// matching the heavy skew of social-media object popularity).
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c KVTraceConfig) withDefaults() KVTraceConfig {
	if c.Keys <= 0 {
		c.Keys = 10000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 128
	}
	if c.GetFraction <= 0 {
		c.GetFraction = 0.5
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	return c
}

// KVTrace generates Router operations on demand.
type KVTrace struct {
	cfg  KVTraceConfig
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewKVTrace creates a trace generator.
func NewKVTrace(cfg KVTraceConfig) *KVTrace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &KVTrace{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1)),
	}
}

// Key returns the canonical key string for population index i.
func (t *KVTrace) Key(i uint64) string {
	return fmt.Sprintf("tweet:%012d", i)
}

// Next produces the next operation in the trace.
func (t *KVTrace) Next() KVOp {
	key := t.Key(t.zipf.Uint64())
	if t.rng.Float64() < t.cfg.GetFraction {
		return KVOp{Kind: KVGet, Key: key}
	}
	val := make([]byte, t.cfg.ValueSize)
	t.rng.Read(val)
	return KVOp{Kind: KVSet, Key: key, Value: val}
}

// Ops materializes n operations.
func (t *KVTrace) Ops(n int) []KVOp {
	out := make([]KVOp, n)
	for i := range out {
		out[i] = t.Next()
	}
	return out
}

// WarmupSets returns one set per key so every later get can hit, used to
// preload leaves before measurement.
func (t *KVTrace) WarmupSets() []KVOp {
	out := make([]KVOp, t.cfg.Keys)
	for i := range out {
		val := make([]byte, t.cfg.ValueSize)
		t.rng.Read(val)
		out[i] = KVOp{Kind: KVSet, Key: t.Key(uint64(i)), Value: val}
	}
	return out
}
