package dataset

import (
	"fmt"
	"math/rand"
)

// DocCorpus is a synthetic stand-in for the paper's 4.3M-document WikiText
// corpus: documents whose words follow a Zipf frequency distribution, so the
// most frequent terms form a natural stop list and posting-list lengths span
// orders of magnitude — the regime set-intersection algorithms care about.
type DocCorpus struct {
	// Docs holds each document as a slice of word IDs.
	Docs [][]int
	// VocabSize is the number of distinct words.
	VocabSize int
	zipfS     float64
	seed      int64
}

// DocCorpusConfig parameterizes corpus generation.
type DocCorpusConfig struct {
	// Docs is the number of documents.
	Docs int
	// VocabSize is the vocabulary size.
	VocabSize int
	// MeanDocLen is the average words per document.
	MeanDocLen int
	// ZipfS is the word-frequency skew (>1; default 1.3 — natural
	// language is near 1).
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c DocCorpusConfig) withDefaults() DocCorpusConfig {
	if c.Docs <= 0 {
		c.Docs = 1000
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 5000
	}
	if c.MeanDocLen <= 0 {
		c.MeanDocLen = 100
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	return c
}

// NewDocCorpus generates a document corpus.
func NewDocCorpus(cfg DocCorpusConfig) *DocCorpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	corpus := &DocCorpus{
		Docs:      make([][]int, cfg.Docs),
		VocabSize: cfg.VocabSize,
		zipfS:     cfg.ZipfS,
		seed:      cfg.Seed,
	}
	for d := 0; d < cfg.Docs; d++ {
		// Document lengths vary ±50% around the mean.
		n := cfg.MeanDocLen/2 + rng.Intn(cfg.MeanDocLen)
		if n < 1 {
			n = 1
		}
		words := make([]int, n)
		for w := 0; w < n; w++ {
			words[w] = int(zipf.Uint64())
		}
		corpus.Docs[d] = words
	}
	return corpus
}

// Word returns the canonical token string of word ID w.
func (c *DocCorpus) Word(w int) string { return fmt.Sprintf("w%06d", w) }

// Queries generates search queries of 1..maxTerms words drawn from the same
// word-occurrence probabilities (the paper synthesizes 10K queries of ≤10
// words from Wikipedia's word probabilities).  Queries of only stop-listed
// terms are legal; the service must handle them.
func (c *DocCorpus) Queries(n, maxTerms int, seed int64) [][]int {
	if maxTerms < 1 {
		maxTerms = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
	zipf := rand.NewZipf(rng, c.zipfS, 1, uint64(c.VocabSize-1))
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		// Real search queries skew short: geometric-ish length.
		terms := 1
		for terms < maxTerms && rng.Float64() < 0.45 {
			terms++
		}
		q := make([]int, 0, terms)
		seen := make(map[int]bool, terms)
		for len(q) < terms {
			w := int(zipf.Uint64())
			if !seen[w] {
				seen[w] = true
				q = append(q, w)
			}
		}
		out[i] = q
	}
	return out
}

// Shard splits document IDs uniformly (round-robin) across n leaves, as the
// paper shards its corpus, returning the doc IDs per shard.
func (c *DocCorpus) Shard(n int) [][]int {
	if n < 1 {
		n = 1
	}
	shards := make([][]int, n)
	for id := range c.Docs {
		shards[id%n] = append(shards[id%n], id)
	}
	return shards
}
