package matfac

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"musuite/internal/dataset"
)

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(0, 5, nil); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewSparse(5, 5, []Triplet{{Row: 5, Col: 0, Val: 1}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := NewSparse(5, 5, []Triplet{{Row: 0, Col: 0, Val: -1}}); err == nil {
		t.Fatal("negative value accepted")
	}
	s, err := NewSparse(3, 4, []Triplet{{0, 0, 1}, {2, 3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 {
		t.Fatalf("nnz=%d", s.NNZ())
	}
}

func TestFactorizeEmpty(t *testing.T) {
	s, _ := NewSparse(3, 3, nil)
	if _, err := Factorize(s, Config{}); err != ErrEmpty {
		t.Fatalf("err=%v want ErrEmpty", err)
	}
}

// TestExactLowRankRecovery plants an exactly rank-2 non-negative matrix and
// checks NMF reconstructs the observed entries closely.
func TestExactLowRankRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols, rank = 30, 25, 2
	wTrue := make([][]float64, rows)
	for i := range wTrue {
		wTrue[i] = []float64{rng.Float64(), rng.Float64()}
	}
	hTrue := make([][]float64, cols)
	for j := range hTrue {
		hTrue[j] = []float64{rng.Float64(), rng.Float64()}
	}
	var data []Triplet
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.6 { // 60% observed
				v := wTrue[i][0]*hTrue[j][0] + wTrue[i][1]*hTrue[j][1]
				data = append(data, Triplet{i, j, v})
			}
		}
	}
	s, err := NewSparse(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Factorize(s, Config{Rank: 4, Iterations: 300, Tolerance: 1e-9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.FinalRMSE() > 0.02 {
		t.Fatalf("RMSE=%v on exactly low-rank data", m.FinalRMSE())
	}
}

func TestNonNegativityInvariant(t *testing.T) {
	c := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{Users: 40, Items: 50, Ratings: 800, Seed: 3})
	data := make([]Triplet, len(c.Ratings))
	for i, r := range c.Ratings {
		data[i] = Triplet{r.User, r.Item, r.Value}
	}
	s, _ := NewSparse(c.Users, c.Items, data)
	m, err := Factorize(s, Config{Rank: 6, Iterations: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.W.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("W[%d][%d]=%v", i/m.W.Stride, i%m.W.Stride, v)
		}
	}
	for i, v := range m.H.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("H[%d][%d]=%v", i/m.H.Stride, i%m.H.Stride, v)
		}
	}
}

func TestErrorMonotonicallyNonIncreasing(t *testing.T) {
	c := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{Users: 30, Items: 40, Ratings: 600, Seed: 5})
	data := make([]Triplet, len(c.Ratings))
	for i, r := range c.Ratings {
		data[i] = Triplet{r.User, r.Item, r.Value}
	}
	s, _ := NewSparse(c.Users, c.Items, data)
	m, err := Factorize(s, Config{Rank: 5, Iterations: 40, Tolerance: 0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ErrorTrace) < 2 {
		t.Fatalf("trace too short: %v", m.ErrorTrace)
	}
	for i := 1; i < len(m.ErrorTrace); i++ {
		// Allow a hair of float slack, relative and absolute (traces
		// that converge to ~1e-13 jitter at machine precision).
		if m.ErrorTrace[i] > m.ErrorTrace[i-1]*(1+1e-9)+1e-10 {
			t.Fatalf("error increased at sweep %d: %v → %v", i, m.ErrorTrace[i-1], m.ErrorTrace[i])
		}
	}
	if m.ErrorTrace[len(m.ErrorTrace)-1] >= m.ErrorTrace[0] {
		t.Fatal("no improvement at all")
	}
}

// Property: for random non-negative sparse matrices, factorization keeps
// factors non-negative and never increases error across sweeps.
func TestQuickNMFInvariants(t *testing.T) {
	f := func(seed int64, rawVals []uint8) bool {
		if len(rawVals) < 5 {
			return true
		}
		if len(rawVals) > 200 {
			rawVals = rawVals[:200]
		}
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 5+rng.Intn(10), 5+rng.Intn(10)
		seen := make(map[[2]int]bool)
		var data []Triplet
		for _, v := range rawVals {
			r, c := rng.Intn(rows), rng.Intn(cols)
			if seen[[2]int{r, c}] {
				continue
			}
			seen[[2]int{r, c}] = true
			data = append(data, Triplet{r, c, 1 + float64(v%5)})
		}
		if len(data) == 0 {
			return true
		}
		s, err := NewSparse(rows, cols, data)
		if err != nil {
			return false
		}
		m, err := Factorize(s, Config{Rank: 3, Iterations: 15, Tolerance: 0, Seed: seed})
		if err != nil {
			return false
		}
		for i := 1; i < len(m.ErrorTrace); i++ {
			if m.ErrorTrace[i] > m.ErrorTrace[i-1]*(1+1e-9)+1e-10 {
				return false
			}
		}
		for _, v := range m.W.Data {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictGeneralizes(t *testing.T) {
	// With planted latent structure, held-out predictions should beat the
	// global-mean baseline.
	c := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: 60, Items: 80, Ratings: 2400, Rank: 4, Noise: 0.2, Seed: 7,
	})
	// Hold out 10% of ratings.
	train, test := c.Ratings[:2160], c.Ratings[2160:]
	data := make([]Triplet, len(train))
	mean := 0.0
	for i, r := range train {
		data[i] = Triplet{r.User, r.Item, r.Value}
		mean += r.Value
	}
	mean /= float64(len(train))
	s, _ := NewSparse(c.Users, c.Items, data)
	m, err := Factorize(s, Config{Rank: 6, Iterations: 120, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var seModel, seMean float64
	for _, r := range test {
		p := m.PredictClamped(r.User, r.Item, 1, 5)
		seModel += (p - r.Value) * (p - r.Value)
		seMean += (mean - r.Value) * (mean - r.Value)
	}
	if seModel >= seMean {
		t.Fatalf("model RMSE²=%v not better than mean baseline %v", seModel, seMean)
	}
	t.Logf("held-out RMSE model=%.3f mean-baseline=%.3f",
		math.Sqrt(seModel/float64(len(test))), math.Sqrt(seMean/float64(len(test))))
}

func TestPredictClampedAndBounds(t *testing.T) {
	s, _ := NewSparse(2, 2, []Triplet{{0, 0, 5}, {1, 1, 5}})
	m, err := Factorize(s, Config{Rank: 2, Iterations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.PredictClamped(0, 0, 1, 5); p < 1 || p > 5 {
		t.Fatalf("clamped prediction %v outside bounds", p)
	}
	// Out-of-range indices predict 0 rather than panicking.
	if p := m.Predict(-1, 0); p != 0 {
		t.Fatalf("negative row predict=%v", p)
	}
	if p := m.Predict(0, 99); p != 0 {
		t.Fatalf("out-of-range col predict=%v", p)
	}
}

func TestToleranceStopsEarly(t *testing.T) {
	c := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{Users: 20, Items: 20, Ratings: 200, Seed: 10})
	data := make([]Triplet, len(c.Ratings))
	for i, r := range c.Ratings {
		data[i] = Triplet{r.User, r.Item, r.Value}
	}
	s, _ := NewSparse(20, 20, data)
	loose, _ := Factorize(s, Config{Rank: 4, Iterations: 500, Tolerance: 1e-2, Seed: 11})
	tight, _ := Factorize(s, Config{Rank: 4, Iterations: 500, Tolerance: 1e-9, Seed: 11})
	if len(loose.ErrorTrace) >= len(tight.ErrorTrace) {
		t.Fatalf("loose tolerance ran %d sweeps, tight %d", len(loose.ErrorTrace), len(tight.ErrorTrace))
	}
}

func BenchmarkFactorizeMovieLensScale(b *testing.B) {
	c := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: 200, Items: 300, Ratings: 10000, Seed: 12,
	})
	data := make([]Triplet, len(c.Ratings))
	for i, r := range c.Ratings {
		data[i] = Triplet{r.User, r.Item, r.Value}
	}
	s, _ := NewSparse(c.Users, c.Items, data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(s, Config{Rank: 8, Iterations: 20, Seed: 13}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	s, _ := NewSparse(100, 100, []Triplet{{0, 0, 3}, {50, 50, 4}})
	m, _ := Factorize(s, Config{Rank: 8, Iterations: 5, Seed: 14})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(i%100, (i*7)%100)
	}
}
