// Package matfac implements the collaborative-filtering math of Recommend:
// a sparse user–item utility matrix and its Non-negative Matrix
// Factorization V ≈ W·H via masked (observed-entries-only) multiplicative
// updates, plus rating prediction from the recovered factors.  It stands in
// for mlpack's NMF module.
//
// The masked multiplicative update is the classic Lee–Seung rule restricted
// to observed cells: it keeps W and H non-negative by construction and
// monotonically non-increases the squared reconstruction error over the
// observed entries — both properties are enforced by this package's tests.
package matfac

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Triplet is one observed cell of the sparse utility matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Sparse is a sparse matrix in triplet form with per-row and per-column
// adjacency, sized for the multiplicative update's access pattern.
type Sparse struct {
	Rows, Cols int
	entries    []Triplet
	byRow      [][]int // entry indexes per row
	byCol      [][]int // entry indexes per column
}

// NewSparse validates and indexes the triplets.
func NewSparse(rows, cols int, data []Triplet) (*Sparse, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matfac: invalid shape %dx%d", rows, cols)
	}
	s := &Sparse{
		Rows: rows, Cols: cols,
		entries: make([]Triplet, len(data)),
		byRow:   make([][]int, rows),
		byCol:   make([][]int, cols),
	}
	copy(s.entries, data)
	for i, t := range s.entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("matfac: entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
		if t.Val < 0 {
			return nil, fmt.Errorf("matfac: negative value %v at (%d,%d); NMF requires non-negative data", t.Val, t.Row, t.Col)
		}
		s.byRow[t.Row] = append(s.byRow[t.Row], i)
		s.byCol[t.Col] = append(s.byCol[t.Col], i)
	}
	return s, nil
}

// NNZ reports the number of observed entries.
func (s *Sparse) NNZ() int { return len(s.entries) }

// Config parameterizes factorization.
type Config struct {
	// Rank r is the latent dimensionality — the number of "similarity
	// concepts" NMF identifies (default 8).
	Rank int
	// Iterations bounds the multiplicative update sweeps (default 50).
	Iterations int
	// Tolerance stops early when the relative error improvement per
	// sweep falls below it (default 1e-5; 0 disables).
	Tolerance float64
	// Seed makes the random initialization deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rank <= 0 {
		c.Rank = 8
	}
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-5
	}
	return c
}

// Mat is a dense row-major matrix in one contiguous block — the flat layout
// the kernel package's stores expect, so serving converts a trained factor
// matrix once (no per-row slice headers to chase, no per-point conversion).
type Mat struct {
	Data   []float64
	Rows   int
	Stride int // row length (= Rank for factor matrices)
}

// NewMat allocates a zeroed rows×stride matrix.
func NewMat(rows, stride int) Mat {
	return Mat{Data: make([]float64, rows*stride), Rows: rows, Stride: stride}
}

// Row returns row i as a slice aliasing the backing block.
func (m Mat) Row(i int) []float64 {
	return m.Data[i*m.Stride : (i+1)*m.Stride : (i+1)*m.Stride]
}

// Model is the factorization result: V ≈ W·H with W (Rows×Rank) capturing
// row↔concept affinity and H (Rank×Cols) concept↔column affinity.
type Model struct {
	Rank int
	// W row r is row r's latent factor vector (length Rank).
	W Mat
	// H row c is column c's latent factor vector (length Rank); stored
	// column-major for cache-friendly prediction.
	H Mat
	// ErrorTrace records the RMSE over observed entries after each
	// sweep, for convergence inspection and the monotonicity invariant.
	ErrorTrace []float64
}

// ErrEmpty reports factorization of a matrix with no observations.
var ErrEmpty = errors.New("matfac: no observed entries")

const eps = 1e-12

// Factorize runs masked multiplicative-update NMF on s.
func Factorize(s *Sparse, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if s.NNZ() == 0 {
		return nil, ErrEmpty
	}
	r := cfg.Rank
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialize with positive uniforms scaled to the data mean so WH
	// starts near the right magnitude.
	mean := 0.0
	for _, t := range s.entries {
		mean += t.Val
	}
	mean /= float64(s.NNZ())
	scale := math.Sqrt(mean / float64(r))
	if scale <= 0 {
		scale = 0.1
	}
	m := &Model{Rank: r, W: NewMat(s.Rows, r), H: NewMat(s.Cols, r)}
	for i := range m.W.Data {
		m.W.Data[i] = scale * (0.5 + rng.Float64())
	}
	for i := range m.H.Data {
		m.H.Data[i] = scale * (0.5 + rng.Float64())
	}

	pred := make([]float64, s.NNZ()) // WH at observed cells
	recompute := func() {
		for i, t := range s.entries {
			pred[i] = dot(m.W.Row(t.Row), m.H.Row(t.Col))
		}
	}
	rmse := func() float64 {
		sum := 0.0
		for i, t := range s.entries {
			d := t.Val - pred[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(s.NNZ()))
	}

	recompute()
	prev := rmse()
	m.ErrorTrace = append(m.ErrorTrace, prev)

	numer := make([]float64, r)
	denom := make([]float64, r)
	for sweep := 0; sweep < cfg.Iterations; sweep++ {
		// Update W rows: W[i] ∘= (Σ_j V_ij·H[j]) / (Σ_j (WH)_ij·H[j]).
		for row := 0; row < s.Rows; row++ {
			idxs := s.byRow[row]
			if len(idxs) == 0 {
				continue
			}
			for k := 0; k < r; k++ {
				numer[k], denom[k] = 0, 0
			}
			wrow := m.W.Row(row)
			for _, ei := range idxs {
				t := s.entries[ei]
				hrow := m.H.Row(t.Col)
				p := dot(wrow, hrow)
				for k := 0; k < r; k++ {
					numer[k] += t.Val * hrow[k]
					denom[k] += p * hrow[k]
				}
			}
			for k := 0; k < r; k++ {
				wrow[k] *= numer[k] / (denom[k] + eps)
			}
		}
		// Update H columns symmetrically.
		for col := 0; col < s.Cols; col++ {
			idxs := s.byCol[col]
			if len(idxs) == 0 {
				continue
			}
			for k := 0; k < r; k++ {
				numer[k], denom[k] = 0, 0
			}
			hrow := m.H.Row(col)
			for _, ei := range idxs {
				t := s.entries[ei]
				wrow := m.W.Row(t.Row)
				p := dot(wrow, hrow)
				for k := 0; k < r; k++ {
					numer[k] += t.Val * wrow[k]
					denom[k] += p * wrow[k]
				}
			}
			for k := 0; k < r; k++ {
				hrow[k] *= numer[k] / (denom[k] + eps)
			}
		}

		recompute()
		cur := rmse()
		m.ErrorTrace = append(m.ErrorTrace, cur)
		if cfg.Tolerance > 0 && prev > 0 && (prev-cur)/prev < cfg.Tolerance {
			break
		}
		prev = cur
	}
	return m, nil
}

// Predict approximates cell (row, col) of the utility matrix.
func (m *Model) Predict(row, col int) float64 {
	if row < 0 || row >= m.W.Rows || col < 0 || col >= m.H.Rows {
		return 0
	}
	return dot(m.W.Row(row), m.H.Row(col))
}

// PredictClamped is Predict bounded to [lo, hi] — ratings live on 1..5.
func (m *Model) PredictClamped(row, col int, lo, hi float64) float64 {
	p := m.Predict(row, col)
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// FinalRMSE reports the last recorded reconstruction error.
func (m *Model) FinalRMSE() float64 {
	if len(m.ErrorTrace) == 0 {
		return math.NaN()
	}
	return m.ErrorTrace[len(m.ErrorTrace)-1]
}

func dot(a, b []float64) float64 {
	s := 0.0
	for k := range a {
		s += a[k] * b[k]
	}
	return s
}
