package topo

import (
	"musuite/internal/wire"
)

// The synthetic wire protocol every spec-defined tier speaks: a request is
// a routing key plus optional padding (modelling request weight), a reply
// is a status flag plus padding.  The key threads unchanged through the
// whole DAG so a request's routing is deterministic end to end; the flag
// carries cache hit/miss (1/0) for kv tiers and is otherwise zero.

// encodeSynthetic builds a request or reply frame.
func encodeSynthetic(key uint64, pad int) []byte {
	e := wire.NewEncoder(16 + pad)
	appendSynthetic(e, key, pad)
	return e.Bytes()
}

// appendSynthetic streams a frame into a caller-owned encoder (the
// zero-allocation leaf handler path).
func appendSynthetic(e *wire.Encoder, key uint64, pad int) {
	e.Uint64(key)
	e.Uvarint(uint64(pad))
	for pad >= len(zeroPad) {
		e.Raw(zeroPad[:])
		pad -= len(zeroPad)
	}
	if pad > 0 {
		e.Raw(zeroPad[:pad])
	}
}

var zeroPad [256]byte

// decodeSynthetic reads a frame's key/flag, skipping the padding.
func decodeSynthetic(b []byte) (uint64, error) {
	d := wire.NewDecoder(b)
	key := d.Uint64()
	d.BytesView()
	return key, d.Err()
}

// encodeKVSet builds a kv "set" request: key, then the value bytes.
func encodeKVSet(key uint64, value []byte) []byte {
	e := wire.NewEncoder(16 + len(value))
	e.Uint64(key)
	e.BytesField(value)
	return e.Bytes()
}

// decodeKVSet reads a kv "set" request; the value view aliases b.
func decodeKVSet(b []byte) (uint64, []byte, error) {
	d := wire.NewDecoder(b)
	key := d.Uint64()
	value := d.BytesView()
	return key, value, d.Err()
}

// splitmix64 is the key-stream and decision hash: deterministic,
// well-mixed, and state-free, so degradation sampling and probabilistic
// cache hits are reproducible without sharing an rng.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
