package topo

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Synthetic service kinds instantiable from a spec alone.  "synthetic" is a
// mid-tier running a declarative op program; the other three are leaf tiers
// modelling the common data-plane roles.
const (
	KindSynthetic = "synthetic"
	KindCompute   = "compute"
	KindCache     = "cache"
	KindStore     = "store"
)

// isLeafKind reports whether kind is a synthetic leaf tier.
func isLeafKind(kind string) bool {
	return kind == KindCompute || kind == KindCache || kind == KindStore
}

// isSyntheticKind reports whether kind is spec-defined rather than a
// registered benchmark.
func isSyntheticKind(kind string) bool {
	return kind == KindSynthetic || isLeafKind(kind)
}

// leafMethods lists each synthetic leaf kind's wire methods.
var leafMethods = map[string][]string{
	KindCompute: {"do"},
	KindCache:   {"get", "set"},
	KindStore:   {"get", "set"},
}

// Validate checks the spec's structural integrity: every reference
// resolves, the service graph is acyclic, kinds carry only the fields they
// understand, and every configured edge timeout covers its downstream's
// worst-case budget.  Build refuses unvalidated specs, so a bad spec fails
// at parse time, not as a hung deployment.
func (s *Spec) Validate() error {
	if len(s.Services) == 0 {
		return fmt.Errorf("topo: spec declares no services")
	}
	for _, name := range s.ServiceNames() {
		if err := s.validateService(s.Services[name]); err != nil {
			return err
		}
	}
	if s.Entry == "" {
		return fmt.Errorf("topo: spec: missing required field %q", "entry")
	}
	entry, ok := s.Services[s.Entry]
	if !ok {
		return fmt.Errorf("topo: entry: unknown service %q", s.Entry)
	}
	if isLeafKind(entry.Kind) {
		return fmt.Errorf("topo: entry %q: leaf kind %q cannot be the entry", s.Entry, entry.Kind)
	}
	if err := s.checkAcyclic(); err != nil {
		return err
	}
	if err := s.checkBudgets(); err != nil {
		return err
	}
	if err := s.validateLoad(entry); err != nil {
		return err
	}
	return s.validateScenario()
}

func (s *Spec) validateService(svc *ServiceSpec) error {
	if !isSyntheticKind(svc.Kind) && !registeredKind(svc.Kind) {
		return fmt.Errorf("topo: services.%s: unknown kind %q", svc.Name, svc.Kind)
	}
	if err := checkParams(svc); err != nil {
		return err
	}
	if svc.Shards < 1 || svc.Replicas < 1 {
		return fmt.Errorf("topo: services.%s: shards and replicas must be ≥ 1", svc.Name)
	}
	if svc.HitRatio < 0 || svc.HitRatio > 1 {
		return fmt.Errorf("topo: services.%s: hit-ratio must be in [0,1]", svc.Name)
	}
	if svc.HitRatio > 0 && svc.Kind != KindCache {
		return fmt.Errorf("topo: services.%s: hit-ratio is only valid on kind %q", svc.Name, KindCache)
	}
	if svc.Kind != KindSynthetic {
		if len(svc.Edges) > 0 || len(svc.Ops) > 0 {
			return fmt.Errorf("topo: services.%s: edges/ops are only valid on kind %q", svc.Name, KindSynthetic)
		}
		if svc.MaxInflight > 0 && !isLeafKind(svc.Kind) {
			return fmt.Errorf("topo: services.%s: max-inflight is only valid on synthetic kinds", svc.Name)
		}
		return nil
	}
	if len(svc.Ops) == 0 {
		return fmt.Errorf("topo: services.%s: synthetic service declares no ops", svc.Name)
	}
	for _, en := range sortedEdgeNames(svc.Edges) {
		e := svc.Edges[en]
		target, ok := s.Services[e.To]
		if !ok {
			return fmt.Errorf("topo: services.%s.edges.%s: unknown service %q", svc.Name, en, e.To)
		}
		if !isSyntheticKind(target.Kind) {
			return fmt.Errorf("topo: services.%s.edges.%s: target %q has registered kind %q, which cannot be called from a synthetic service", svc.Name, en, e.To, target.Kind)
		}
		if e.HedgePct < 0 || e.HedgePct >= 1 {
			return fmt.Errorf("topo: services.%s.edges.%s: hedge-pct must be in [0,1)", svc.Name, en)
		}
	}
	for _, on := range sortedOpNames(svc.Ops) {
		if err := s.validateOp(svc, svc.Ops[on]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) validateOp(svc *ServiceSpec, op *OpSpec) error {
	path := fmt.Sprintf("services.%s.ops.%s", svc.Name, op.Name)
	for i, c := range op.Calls {
		cpath := fmt.Sprintf("%s.calls[%d]", path, i)
		edge, ok := svc.Edges[c.Edge]
		if !ok {
			return fmt.Errorf("topo: %s: unknown edge %q", cpath, c.Edge)
		}
		if err := s.checkMethod(cpath, edge, c.Method); err != nil {
			return err
		}
		if c.MissEdge != "" {
			if c.Method != "get" {
				return fmt.Errorf("topo: %s: miss-edge requires method \"get\"", cpath)
			}
			miss, ok := svc.Edges[c.MissEdge]
			if !ok {
				return fmt.Errorf("topo: %s: unknown miss-edge %q", cpath, c.MissEdge)
			}
			if err := s.checkMethod(cpath, miss, "get"); err != nil {
				return err
			}
		}
		if c.Fill && c.MissEdge == "" {
			return fmt.Errorf("topo: %s: fill requires miss-edge", cpath)
		}
		if c.Fill {
			if err := s.checkMethod(cpath, svc.Edges[c.Edge], "set"); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkMethod verifies the method exists on the edge's target.
func (s *Spec) checkMethod(path string, edge *EdgeSpec, method string) error {
	target := s.Services[edge.To]
	switch {
	case target.Kind == KindSynthetic:
		if _, ok := target.Ops[method]; !ok {
			return fmt.Errorf("topo: %s: service %q has no op %q", path, edge.To, method)
		}
	case isLeafKind(target.Kind):
		for _, m := range leafMethods[target.Kind] {
			if m == method {
				return nil
			}
		}
		return fmt.Errorf("topo: %s: kind %q has no method %q (valid: %s)",
			path, target.Kind, method, strings.Join(leafMethods[target.Kind], ", "))
	}
	return nil
}

// checkAcyclic rejects cycles in the service graph with a path-labelled
// error (a cyclic DAG would deadlock at build and at runtime).
func (s *Spec) checkAcyclic() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch state[name] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("topo: service cycle: %s", strings.Join(append(path, name), " -> "))
		}
		state[name] = visiting
		svc := s.Services[name]
		for _, en := range sortedEdgeNames(svc.Edges) {
			if err := visit(svc.Edges[en].To, append(path, name)); err != nil {
				return err
			}
		}
		state[name] = done
		return nil
	}
	for _, name := range s.ServiceNames() {
		if err := visit(name, nil); err != nil {
			return err
		}
	}
	return nil
}

// checkBudgets verifies every configured edge timeout is at least its
// downstream's worst-case service time (work plus the downstream's own
// slowest op), so a spec cannot configure an edge that times out on every
// healthy request.
func (s *Spec) checkBudgets() error {
	memo := map[string]time.Duration{}
	var svcBudget func(name string) time.Duration
	var opBudget func(svc *ServiceSpec, op *OpSpec) time.Duration

	// callBudget is one call's worst-case time as seen by its caller: the
	// configured edge timeout caps it; otherwise it inherits the target's
	// budget.  A cache miss chain is sequential: probe + fetch + fill.
	callBudget := func(svc *ServiceSpec, c CallSpec) time.Duration {
		edgeCost := func(e *EdgeSpec) time.Duration {
			if e.Timeout > 0 {
				return e.Timeout
			}
			return svcBudget(e.To)
		}
		b := edgeCost(svc.Edges[c.Edge])
		if c.MissEdge != "" {
			b += edgeCost(svc.Edges[c.MissEdge])
			if c.Fill {
				b += edgeCost(svc.Edges[c.Edge])
			}
		}
		return b
	}

	opBudget = func(svc *ServiceSpec, op *OpSpec) time.Duration {
		total := op.Work
		stages := map[int]time.Duration{}
		for _, c := range op.Calls {
			if b := callBudget(svc, c); b > stages[c.Stage] {
				stages[c.Stage] = b
			}
		}
		for _, b := range stages {
			total += b
		}
		return total
	}

	svcBudget = func(name string) time.Duration {
		if b, ok := memo[name]; ok {
			return b
		}
		svc := s.Services[name]
		var b time.Duration
		switch {
		case svc.Kind == KindSynthetic:
			for _, on := range sortedOpNames(svc.Ops) {
				if ob := opBudget(svc, svc.Ops[on]); ob > b {
					b = ob
				}
			}
		case isLeafKind(svc.Kind):
			b = svc.Work
		}
		memo[name] = b
		return b
	}

	for _, name := range s.ServiceNames() {
		svc := s.Services[name]
		for _, en := range sortedEdgeNames(svc.Edges) {
			e := svc.Edges[en]
			if e.Timeout <= 0 {
				continue
			}
			if need := svcBudget(e.To); e.Timeout < need {
				return fmt.Errorf("topo: services.%s.edges.%s: timeout %v is below %q's worst-case budget %v — every healthy call would expire",
					name, en, e.Timeout, e.To, need)
			}
		}
	}
	return nil
}

func (s *Spec) validateLoad(entry *ServiceSpec) error {
	if len(s.Load.Mix) == 0 {
		return nil
	}
	if entry.Kind != KindSynthetic {
		return fmt.Errorf("topo: load.mix is only valid with a synthetic entry")
	}
	for op := range s.Load.Mix {
		if _, ok := entry.Ops[op]; !ok {
			return fmt.Errorf("topo: load.mix: entry %q has no op %q", entry.Name, op)
		}
	}
	return nil
}

func (s *Spec) validateScenario() error {
	for i, e := range s.Scenario {
		path := fmt.Sprintf("scenario[%d]", i)
		switch {
		case e.Target != "" && e.Edge != "":
			return fmt.Errorf("topo: %s: target and edge are mutually exclusive", path)
		case e.Target != "":
			svc, ok := s.Services[e.Target]
			if !ok {
				return fmt.Errorf("topo: %s: unknown service %q", path, e.Target)
			}
			if !isSyntheticKind(svc.Kind) {
				return fmt.Errorf("topo: %s: target %q is a registered kind; only synthetic services degrade", path, e.Target)
			}
			if e.Slow == 0 && e.ErrorRate == 0 {
				return fmt.Errorf("topo: %s: target event needs slow or error-rate", path)
			}
			if e.ErrorRate < 0 || e.ErrorRate > 1 {
				return fmt.Errorf("topo: %s: error-rate must be in [0,1]", path)
			}
		case e.Edge != "":
			svcName, edgeName, ok := strings.Cut(e.Edge, "/")
			if !ok {
				return fmt.Errorf("topo: %s: edge must be \"service/edge\", got %q", path, e.Edge)
			}
			svc, ok := s.Services[svcName]
			if !ok {
				return fmt.Errorf("topo: %s: unknown service %q", path, svcName)
			}
			if _, ok := svc.Edges[edgeName]; !ok {
				return fmt.Errorf("topo: %s: service %q has no edge %q", path, svcName, edgeName)
			}
			if e.Delay == 0 {
				return fmt.Errorf("topo: %s: edge event needs delay", path)
			}
		default:
			return fmt.Errorf("topo: %s: event needs target or edge", path)
		}
	}
	return nil
}

func sortedEdgeNames(m map[string]*EdgeSpec) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedOpNames(m map[string]*OpSpec) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
