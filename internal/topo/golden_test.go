package topo

import (
	"reflect"
	"testing"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/services/recommend"
	"musuite/internal/services/router"
	"musuite/internal/services/setalgebra"
)

// Golden equivalence: each of the four handwritten μSuite services,
// re-expressed as a one-node topology spec, must produce byte-identical
// responses and the same TierStats shape as the handwritten
// StartCluster wiring it replaced.  This is the refactor's contract: the
// spec path is the same machinery, not a parallel reimplementation.

const goldenSeed = int64(1)

// specEntryAddr builds a one-node registered-kind spec and returns the
// deployment plus its entry mid-tier address.
func specEntryAddr(t *testing.T, src string) (*Deployment, string) {
	t.Helper()
	spec, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(spec, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, d.EntryAddrs()[0]
}

// goldenLeafOptions mirrors kindLeafOptions for the handwritten side.
func goldenLeafOptions() core.LeafOptions {
	return core.LeafOptions{Kernel: kernel.New(kernel.Config{})}
}

// tierStats queries a mid-tier's stats over the wire, exactly as an
// operator would.
func tierStats(t *testing.T, addr string) core.TierStats {
	t.Helper()
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := core.QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// assertStatsShape pins the spec-driven tier to the handwritten tier's
// stats shape: same role, same worker pool, same served count for the
// same offered requests.
func assertStatsShape(t *testing.T, specAddr, refAddr string) {
	t.Helper()
	specSt, refSt := tierStats(t, specAddr), tierStats(t, refAddr)
	if specSt.Role != refSt.Role {
		t.Errorf("role: spec=%q handwritten=%q", specSt.Role, refSt.Role)
	}
	if specSt.Workers != refSt.Workers {
		t.Errorf("workers: spec=%d handwritten=%d", specSt.Workers, refSt.Workers)
	}
	if specSt.Served != refSt.Served {
		t.Errorf("served: spec=%d handwritten=%d", specSt.Served, refSt.Served)
	}
}

func TestGoldenHDSearch(t *testing.T) {
	_, specAddr := specEntryAddr(t, `
topology: hdsearch-golden
entry: search
services:
  search:
    kind: hdsearch
    shards: 2
    params: {corpus: 500, dim: 16, clusters: 5, queries: 64}
`)
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 500, Dim: 16, Clusters: 5, Seed: goldenSeed,
	})
	cl, err := hdsearch.StartCluster(hdsearch.ClusterConfig{
		Corpus: corpus, Shards: 2, Leaf: goldenLeafOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	specClient, err := hdsearch.DialClient(specAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer specClient.Close()
	refClient, err := hdsearch.DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer refClient.Close()

	for i, q := range corpus.Queries(16, goldenSeed+100) {
		got, err := specClient.Search(q, 5)
		if err != nil {
			t.Fatalf("query %d (spec): %v", i, err)
		}
		want, err := refClient.Search(q, 5)
		if err != nil {
			t.Fatalf("query %d (handwritten): %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: spec %v != handwritten %v", i, got, want)
		}
	}
	assertStatsShape(t, specAddr, cl.Addr)
}

func TestGoldenRouter(t *testing.T) {
	_, specAddr := specEntryAddr(t, `
topology: router-golden
entry: kv
services:
  kv:
    kind: router
    shards: 2
    replicas: 2
    params: {keys: 200, value-size: 32}
`)
	cl, err := router.StartCluster(router.ClusterConfig{
		Leaves: 2, Replicas: 2, Leaf: goldenLeafOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	specClient, err := router.DialClient(specAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer specClient.Close()
	refClient, err := router.DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer refClient.Close()

	// The spec builder already warmed its cluster from this trace; replay
	// the identical warmup on the handwritten side.
	kvtrace := dataset.NewKVTrace(dataset.KVTraceConfig{
		Keys: 200, ValueSize: 32, Seed: goldenSeed + 200,
	})
	for _, op := range kvtrace.WarmupSets() {
		if err := refClient.Set(op.Key, op.Value); err != nil {
			t.Fatal(err)
		}
	}
	for i, op := range kvtrace.Ops(64) {
		if op.Kind != dataset.KVGet {
			continue
		}
		gotV, gotOK, err := specClient.Get(op.Key)
		if err != nil {
			t.Fatalf("op %d (spec): %v", i, err)
		}
		wantV, wantOK, err := refClient.Get(op.Key)
		if err != nil {
			t.Fatalf("op %d (handwritten): %v", i, err)
		}
		if gotOK != wantOK || !reflect.DeepEqual(gotV, wantV) {
			t.Fatalf("get %q: spec (%q,%v) != handwritten (%q,%v)",
				op.Key, gotV, gotOK, wantV, wantOK)
		}
	}
	assertStatsShape(t, specAddr, cl.Addr)
}

func TestGoldenSetAlgebra(t *testing.T) {
	_, specAddr := specEntryAddr(t, `
topology: setalgebra-golden
entry: search
services:
  search:
    kind: setalgebra
    shards: 2
    params: {docs: 300, vocab: 800, mean-doc-len: 30, stop-terms: 5}
`)
	corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: 300, VocabSize: 800, MeanDocLen: 30, Seed: goldenSeed + 300,
	})
	cl, err := setalgebra.StartCluster(setalgebra.ClusterConfig{
		Corpus: corpus, Shards: 2, StopTerms: 5, Leaf: goldenLeafOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	specClient, err := setalgebra.DialClient(specAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer specClient.Close()
	refClient, err := setalgebra.DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer refClient.Close()

	for i, q := range corpus.Queries(32, 10, goldenSeed+301) {
		got, err := specClient.Search(q)
		if err != nil {
			t.Fatalf("query %d (spec): %v", i, err)
		}
		want, err := refClient.Search(q)
		if err != nil {
			t.Fatalf("query %d (handwritten): %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (%v): spec %v != handwritten %v", i, q, got, want)
		}
	}
	assertStatsShape(t, specAddr, cl.Addr)
}

func TestGoldenRecommend(t *testing.T) {
	_, specAddr := specEntryAddr(t, `
topology: recommend-golden
entry: recs
services:
  recs:
    kind: recommend
    shards: 2
    params: {users: 30, items: 40, ratings: 600}
`)
	corpus := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: 30, Items: 40, Ratings: 600, Seed: goldenSeed + 400,
	})
	cl, err := recommend.StartCluster(recommend.ClusterConfig{
		Corpus: corpus, Shards: 2, Seed: goldenSeed + 401, Leaf: goldenLeafOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	specClient, err := recommend.DialClient(specAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer specClient.Close()
	refClient, err := recommend.DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer refClient.Close()

	for i, p := range corpus.QueryPairs(16, goldenSeed+402) {
		got, gotOK, err := specClient.Predict(p[0], p[1])
		if err != nil {
			t.Fatalf("pair %d (spec): %v", i, err)
		}
		want, wantOK, err := refClient.Predict(p[0], p[1])
		if err != nil {
			t.Fatalf("pair %d (handwritten): %v", i, err)
		}
		if got != want || gotOK != wantOK {
			t.Fatalf("pair %d %v: spec (%v,%v) != handwritten (%v,%v)",
				i, p, got, gotOK, want, wantOK)
		}
	}
	assertStatsShape(t, specAddr, cl.Addr)
}
