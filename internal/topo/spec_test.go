package topo

import (
	"strings"
	"testing"
	"time"
)

const validSpec = `
topology: demo
entry: fe
seed: 7

services:
  fe:
    kind: synthetic
    shards: 2
    work: 20us
    edges:
      mid: {to: mid, timeout: 50ms, retries: 1}
    ops:
      q:
        calls:
          - {edge: mid, method: fetch}
  mid:
    kind: synthetic
    edges:
      cache: {to: cache, timeout: 5ms}
      db: {to: db, timeout: 10ms}
    ops:
      fetch:
        work: 10us
        calls:
          - {edge: cache, method: get, miss-edge: db, fill: true}
  cache:
    kind: cache
    hit-ratio: 0.5
  db:
    kind: store
    work: 100us

load:
  pattern: diurnal
  qps: 100
  duration: 2s
  mix: {q: 1}

scenario:
  - {at: 500ms, for: 1s, target: mid, slow: 1ms}
  - {at: 1s, edge: fe/mid, delay: 2ms}
`

func TestParseSpecHappyPath(t *testing.T) {
	s, err := ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || s.Entry != "fe" || s.Seed != 7 {
		t.Fatalf("header: %+v", s)
	}
	if len(s.Services) != 4 {
		t.Fatalf("services=%d want 4", len(s.Services))
	}
	fe := s.Services["fe"]
	if fe.Shards != 2 || fe.Work != 20*time.Microsecond {
		t.Fatalf("fe: %+v", fe)
	}
	e := fe.Edges["mid"]
	if e.To != "mid" || e.Timeout != 50*time.Millisecond || e.Retries != 1 {
		t.Fatalf("fe.mid edge: %+v", e)
	}
	call := s.Services["mid"].Ops["fetch"].Calls[0]
	if call.MissEdge != "db" || !call.Fill || call.Method != "get" {
		t.Fatalf("miss chain call: %+v", call)
	}
	if s.Load.Pattern != PatternDiurnal || s.Load.QPS != 100 || s.Load.Mix["q"] != 1 {
		t.Fatalf("load: %+v", s.Load)
	}
	if len(s.Scenario) != 2 || s.Scenario[1].Edge != "fe/mid" {
		t.Fatalf("scenario: %+v", s.Scenario)
	}
}

// mutate applies a textual substitution to the valid spec, producing a
// broken variant for each validation rule.
func mutate(old, new string) []byte {
	out := strings.Replace(validSpec, old, new, 1)
	if out == validSpec {
		panic("mutation did not apply: " + old)
	}
	return []byte(out)
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		src  []byte
		want string
	}{
		{"unknown-kind", mutate("kind: store", "kind: database"), `unknown kind "database"`},
		{"unknown-entry", mutate("entry: fe", "entry: nope"), `entry: unknown service "nope"`},
		{"leaf-entry", mutate("entry: fe", "entry: db"), "cannot be the entry"},
		{"unknown-edge-target", mutate("to: db, timeout: 10ms", "to: ghost, timeout: 10ms"), `unknown service "ghost"`},
		{"unknown-call-edge", mutate("edge: mid, method: fetch", "edge: ghost, method: fetch"), `unknown edge "ghost"`},
		{"unknown-op", mutate("method: fetch", "method: nope"), `has no op "nope"`},
		{"bad-leaf-method", mutate("edge: cache, method: get", "edge: cache, method: scan"), `no method "scan"`},
		{"fill-without-miss", mutate("miss-edge: db, fill: true", "fill: true"), "fill requires miss-edge"},
		{"unknown-field", mutate("seed: 7", "seed: 7\nbogus: 1"), `unknown field "bogus"`},
		{"unknown-service-field", mutate("kind: store", "kind: store\n    wat: 1"), `unknown field "wat"`},
		{"bad-param", mutate("kind: cache", "kind: hdsearch\n    params: {corpse: 1}"), `no param "corpse"`},
		{"synthetic-param", mutate("kind: store", "kind: store\n    params: {x: 1}"), "accepts no params"},
		{"mix-unknown-op", mutate("mix: {q: 1}", "mix: {zz: 1}"), `has no op "zz"`},
		{"scenario-unknown-target", mutate("target: mid, slow: 1ms", "target: zz, slow: 1ms"), `unknown service "zz"`},
		{"scenario-bad-edge", mutate("edge: fe/mid", "edge: fe.mid"), `must be "service/edge"`},
		{"scenario-no-effect", mutate("target: mid, slow: 1ms", "target: mid"), "needs slow or error-rate"},
		{"scenario-no-delay", mutate("edge: fe/mid, delay: 2ms", "edge: fe/mid"), "edge event needs delay"},
		{"bad-hit-ratio", mutate("hit-ratio: 0.5", "hit-ratio: 1.5"), "hit-ratio must be in [0,1]"},
		{"hedge-on-store", mutate("to: db, timeout: 10ms", "to: db, timeout: 10ms, hedge-pct: 1.0"), "hedge-pct must be in [0,1)"},
		{"bad-duration", mutate("work: 20us", "work: fast"), `invalid duration "fast"`},
		{"negative-shards", mutate("shards: 2", "shards: -1"), "must be ≥ 1"},
		{"bad-pattern", mutate("pattern: diurnal", "pattern: sawtooth"), `unknown pattern "sawtooth"`},
		{"no-ops", mutate("ops:\n      q:\n        calls:\n          - {edge: mid, method: fetch}", "workers: 1"), "declares no ops"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil {
				t.Fatal("spec validated; want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateCycle(t *testing.T) {
	src := `
entry: a
services:
  a:
    kind: synthetic
    edges:
      next: {to: b}
    ops:
      q:
        calls: [{edge: next, method: q}]
  b:
    kind: synthetic
    edges:
      back: {to: a}
    ops:
      q:
        calls: [{edge: back, method: q}]
`
	_, err := ParseSpec([]byte(src))
	if err == nil || !strings.Contains(err.Error(), "service cycle") {
		t.Fatalf("err=%v, want service cycle", err)
	}
}

func TestValidateTimeoutBudget(t *testing.T) {
	// mid's fetch costs ~10ms (db edge timeout); a 1ms fe->mid timeout
	// can never be met.
	src := mutate("to: mid, timeout: 50ms, retries: 1", "to: mid, timeout: 1ms, retries: 1")
	_, err := ParseSpec(src)
	if err == nil || !strings.Contains(err.Error(), "worst-case budget") {
		t.Fatalf("err=%v, want budget violation", err)
	}
}

func TestExampleSpecsParse(t *testing.T) {
	files := []string{
		"../../examples/social-network.yaml",
		"../../examples/hotel-reservation.yaml",
		"../../examples/hdsearch.yaml",
		"../../examples/router.yaml",
		"../../examples/setalgebra.yaml",
		"../../examples/recommend.yaml",
	}
	for _, f := range files {
		s, err := LoadSpecFile(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if s.Name == "" || s.Entry == "" {
			t.Errorf("%s: missing name/entry: %+v", f, s)
		}
	}
}
