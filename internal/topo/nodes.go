package topo

import (
	"fmt"
	"strconv"
	"time"

	"musuite/internal/core"
	"musuite/internal/memcache"
	"musuite/internal/wire"
)

// Synthetic leaf tiers: spec-instantiated data-plane nodes modelling the
// three roles real microservice DAGs compose — pure compute, a cache in
// front of a store, and the authoritative store itself.  Work is simulated
// by sleeping on the leaf worker (the worker pool is bounded, so queueing
// under overload behaves exactly like a busy real leaf without burning CI
// cores), and every node consults its service's live degradation state so
// scenario events take effect mid-request-stream.

// simulateWork models d of service time on the current worker.
func simulateWork(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// errInjected marks scenario-injected failures.
func errInjected(svc string) error {
	return fmt.Errorf("topo: injected fault at %s", svc)
}

// newSyntheticLeaf builds one instance of a synthetic leaf kind.  Each
// cache instance owns its own store (replica caches are independent, as in
// a real look-aside deployment); all instances of a service share deg.
func newSyntheticLeaf(svc *ServiceSpec, deg *degrade, opts *core.LeafOptions) (*core.Leaf, error) {
	switch svc.Kind {
	case KindCompute:
		return core.NewLeafEncoded(computeHandler(svc, deg), opts), nil
	case KindCache:
		var store *memcache.Store
		if svc.HitRatio == 0 {
			store = memcache.New(memcache.Config{MaxBytes: 32 << 20})
		}
		return core.NewLeafEncoded(cacheHandler(svc, deg, store), opts), nil
	case KindStore:
		return core.NewLeafEncoded(storeHandler(svc, deg), opts), nil
	}
	return nil, fmt.Errorf("topo: %q is not a synthetic leaf kind", svc.Kind)
}

// computeHandler answers "do": simulated work, then a padded reply.
func computeHandler(svc *ServiceSpec, deg *degrade) core.EncodedLeafHandler {
	return func(method string, payload []byte, reply *wire.Encoder) error {
		if method != "do" {
			return fmt.Errorf("topo: %s: unknown method %q", svc.Name, method)
		}
		key, err := decodeSynthetic(payload)
		if err != nil {
			return err
		}
		simulateWork(svc.Work + deg.extra())
		if deg.fail() {
			return errInjected(svc.Name)
		}
		appendSynthetic(reply, key, svc.ReplyBytes)
		return nil
	}
}

// cacheHandler answers get/set.  With a hit-ratio configured the hit
// decision is a stable hash of the key — reproducible without any state;
// otherwise a real in-memory store backs the lookups, so the fill path of a
// cache-then-store op actually populates subsequent hits.
func cacheHandler(svc *ServiceSpec, deg *degrade, store *memcache.Store) core.EncodedLeafHandler {
	hitThreshold := uint64(svc.HitRatio * 1_000_000)
	return func(method string, payload []byte, reply *wire.Encoder) error {
		simulateWork(svc.Work + deg.extra())
		if deg.fail() {
			return errInjected(svc.Name)
		}
		switch method {
		case "get":
			key, err := decodeSynthetic(payload)
			if err != nil {
				return err
			}
			hit := false
			if store != nil {
				_, hit = store.Get(cacheKey(key))
			} else {
				hit = splitmix64(key^0x6361636865)%1_000_000 < hitThreshold
			}
			if hit {
				appendSynthetic(reply, 1, svc.ReplyBytes)
			} else {
				appendSynthetic(reply, 0, 0)
			}
			return nil
		case "set":
			key, value, err := decodeKVSet(payload)
			if err != nil {
				return err
			}
			if store != nil {
				store.Set(cacheKey(key), value, 0)
			}
			appendSynthetic(reply, 1, 0)
			return nil
		}
		return fmt.Errorf("topo: %s: unknown method %q", svc.Name, method)
	}
}

// storeHandler answers get/set as the authoritative tier: every get hits.
func storeHandler(svc *ServiceSpec, deg *degrade) core.EncodedLeafHandler {
	return func(method string, payload []byte, reply *wire.Encoder) error {
		simulateWork(svc.Work + deg.extra())
		if deg.fail() {
			return errInjected(svc.Name)
		}
		switch method {
		case "get":
			if _, err := decodeSynthetic(payload); err != nil {
				return err
			}
			appendSynthetic(reply, 1, svc.ReplyBytes)
			return nil
		case "set":
			if _, _, err := decodeKVSet(payload); err != nil {
				return err
			}
			appendSynthetic(reply, 1, 0)
			return nil
		}
		return fmt.Errorf("topo: %s: unknown method %q", svc.Name, method)
	}
}

func cacheKey(key uint64) string { return strconv.FormatUint(key, 16) }
