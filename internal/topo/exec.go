package topo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/core"
	"musuite/internal/rpc"
)

// The synthetic mid-tier: a core.MidTier whose handler interprets the
// spec's op programs instead of hardwired service logic.  Each op is a
// sequence of stages; calls within a stage issue in parallel through the
// framework's named edges (inheriting that edge's timeout, hedging,
// retries, and batching), and a stage starts only when the previous one's
// last call has resolved.  Cache-then-store chains (probe, miss-fetch,
// fill) ride inside a single call slot, so a stage's completion count is
// stable no matter how a probe resolves.

// svcNode is one synthetic service's compiled program, shared by all of
// its mid-tier instances.
type svcNode struct {
	svc    *ServiceSpec
	deg    *degrade
	delays map[string]*edgeDelay
	progs  map[string]*opProgram
}

// opProgram is one op compiled for execution: its calls grouped into
// stages in ascending stage order, with per-call fill values prebuilt.
type opProgram struct {
	op     *OpSpec
	stages [][]compiledCall
}

type compiledCall struct {
	CallSpec
	// fillValue is the canned value written back on a fill, sized to the
	// miss target's reply weight.
	fillValue []byte
}

// newSvcNode compiles a synthetic service's ops.
func newSvcNode(spec *Spec, svc *ServiceSpec, deg *degrade, delays map[string]*edgeDelay) *svcNode {
	n := &svcNode{svc: svc, deg: deg, delays: delays, progs: map[string]*opProgram{}}
	for name, op := range svc.Ops {
		prog := &opProgram{op: op}
		byStage := map[int][]compiledCall{}
		for _, c := range op.Calls {
			cc := compiledCall{CallSpec: c}
			if c.Fill {
				missTo := spec.Services[svc.Edges[c.MissEdge].To]
				size := missTo.ReplyBytes
				if size < 8 {
					size = 8
				}
				cc.fillValue = make([]byte, size)
			}
			byStage[c.Stage] = append(byStage[c.Stage], cc)
		}
		stages := make([]int, 0, len(byStage))
		for s := range byStage {
			stages = append(stages, s)
		}
		sort.Ints(stages)
		for _, s := range stages {
			prog.stages = append(prog.stages, byStage[s])
		}
		n.progs[name] = prog
	}
	return n
}

// handler is the core.Handler every instance of this service runs.
func (n *svcNode) handler(c *core.Ctx) {
	prog := n.progs[c.Req.Method]
	if prog == nil {
		c.ReplyError(fmt.Errorf("topo: %s: unknown op %q", n.svc.Name, c.Req.Method))
		return
	}
	key, err := decodeSynthetic(c.Req.Payload)
	if err != nil {
		c.ReplyError(err)
		return
	}
	simulateWork(prog.op.Work + n.deg.extra())
	if n.deg.fail() {
		c.ReplyError(errInjected(n.svc.Name))
		return
	}
	ex := &opExec{n: n, c: c, prog: prog, key: key}
	ex.runStage(0)
}

// opExec is one in-flight op execution.
type opExec struct {
	n    *svcNode
	c    *core.Ctx
	prog *opProgram
	key  uint64

	stage   int
	pending atomic.Int32

	mu       sync.Mutex
	err      error
	overload bool
}

func (ex *opExec) runStage(i int) {
	if i >= len(ex.prog.stages) {
		ex.c.Reply(encodeSynthetic(ex.key, ex.n.svc.ReplyBytes))
		return
	}
	ex.stage = i
	calls := ex.prog.stages[i]
	ex.pending.Store(int32(len(calls)))
	for j := range calls {
		ex.issueCall(&calls[j])
	}
}

// issueCall launches one call slot, honoring any scenario-injected edge
// latency by deferring the issue on a timer (caller-side injection: the
// core hot path never sees the knob).
func (ex *opExec) issueCall(call *compiledCall) {
	ex.withDelay(call.Edge, func() { ex.sendPrimary(call) })
}

func (ex *opExec) withDelay(edgeName string, send func()) {
	if d := ex.n.delays[edgeName].current(); d > 0 {
		time.AfterFunc(d, send)
		return
	}
	send()
}

func (ex *opExec) sendPrimary(call *compiledCall) {
	ec, err := ex.c.Edge(call.Edge)
	if err != nil {
		ex.resolveCall(call, err)
		return
	}
	payload := encodeSynthetic(ex.key, 0)
	merge := func(rs []core.LeafResult) { ex.onPrimary(call, rs) }
	if call.Mode == "all" {
		ec.FanoutAll(call.Method, payload, merge)
		return
	}
	ec.Fanout([]core.LeafCall{{
		Shard:   ec.Shard(splitmix64(ex.key)),
		Method:  call.Method,
		Payload: payload,
	}}, merge)
}

// onPrimary merges a call's first round of results and runs any miss chain
// before resolving the slot.
func (ex *opExec) onPrimary(call *compiledCall, rs []core.LeafResult) {
	var firstErr error
	hit := true
	for _, r := range rs {
		if r.Err != nil {
			if firstErr == nil || rpc.IsOverload(r.Err) {
				firstErr = r.Err
			}
			continue
		}
		flag, err := decodeSynthetic(r.Reply)
		if err != nil {
			firstErr = err
		} else if flag == 0 {
			hit = false
		}
	}
	if firstErr != nil || call.MissEdge == "" || hit {
		ex.resolveCall(call, firstErr)
		return
	}
	// Cache miss: fetch the authoritative copy, then optionally fill the
	// cache before the slot resolves (so the op's reply never races its
	// own write-back).
	ex.withDelay(call.MissEdge, func() {
		ex.sendSingle(call.MissEdge, "get", encodeSynthetic(ex.key, 0), func(err error) {
			if err != nil || !call.Fill {
				ex.resolveCall(call, err)
				return
			}
			ex.withDelay(call.Edge, func() {
				ex.sendSingle(call.Edge, "set", encodeKVSet(ex.key, call.fillValue), func(fillErr error) {
					// A failed fill degrades future hit ratio, not this
					// request: the authoritative read already succeeded.
					ex.resolveCall(call, nil)
					_ = fillErr
				})
			})
		})
	})
}

// sendSingle issues one keyed call on an edge and reports its error.
func (ex *opExec) sendSingle(edgeName, method string, payload []byte, done func(error)) {
	ec, err := ex.c.Edge(edgeName)
	if err != nil {
		done(err)
		return
	}
	ec.Fanout([]core.LeafCall{{
		Shard:   ec.Shard(splitmix64(ex.key)),
		Method:  method,
		Payload: payload,
	}}, func(rs []core.LeafResult) {
		var e error
		for _, r := range rs {
			if r.Err != nil {
				e = r.Err
				break
			}
		}
		done(e)
	})
}

// resolveCall completes one call slot; the stage advances when its last
// slot resolves, and the op fails with the first non-optional error —
// typed overload stays typed all the way up, so backpressure deep in the
// DAG surfaces to the front-end as deliberate shedding, never as an
// untyped failure.
func (ex *opExec) resolveCall(call *compiledCall, err error) {
	if err != nil && !call.Optional {
		ex.mu.Lock()
		if ex.err == nil {
			ex.err = err
			ex.overload = rpc.IsOverload(err)
		}
		ex.mu.Unlock()
	}
	if ex.pending.Add(-1) != 0 {
		return
	}
	ex.mu.Lock()
	err, overload := ex.err, ex.overload
	ex.mu.Unlock()
	switch {
	case err == nil:
		ex.runStage(ex.stage + 1)
	case overload:
		ex.c.ReplyError(rpc.Overloadf("topo: %s: downstream overload: %v", ex.n.svc.Name, err))
	default:
		ex.c.ReplyError(fmt.Errorf("topo: %s: %w", ex.n.svc.Name, err))
	}
}
