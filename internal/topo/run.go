package topo

import (
	"time"

	"musuite/internal/loadgen"
)

// RunOptions parameterizes one spec run.
type RunOptions struct {
	// Build instruments the deployment.
	Build BuildOptions
	// QPS and Duration override the spec's load shape when positive.
	QPS float64
	// Duration overrides the spec's offered-load window when positive.
	Duration time.Duration
	// Pattern overrides the spec's load pattern when non-empty.
	Pattern string
	// Seed overrides the spec's seed when non-zero.
	Seed int64
	// DrainTimeout bounds the post-window wait for stragglers.
	DrainTimeout time.Duration
}

// RunResult is one spec run's measurement.
type RunResult struct {
	// Phases are the per-phase results of the offered load.
	Phases []loadgen.PhaseResult
	// Events logs the scenario transitions that fired during the run.
	Events []EventLogEntry
}

// Totals aggregates the phases.
func (r *RunResult) Totals() (offered, completed, errors, shed, dropped uint64) {
	for _, p := range r.Phases {
		offered += p.Offered
		completed += p.Completed
		errors += p.Errors
		shed += p.Shed
		dropped += p.Dropped
	}
	return
}

// Run builds the spec, arms its scenario, offers its load shape at the
// entry, and tears everything down: the one-call path behind `cmd/topo`
// and `musuite-bench -experiment scenario`.
func Run(spec *Spec, opts RunOptions) (*RunResult, error) {
	load := spec.Load
	if opts.QPS > 0 {
		load.QPS = opts.QPS
	}
	if opts.Duration > 0 {
		load.Duration = opts.Duration
	}
	if opts.Pattern != "" {
		load.Pattern = opts.Pattern
	}
	seed := spec.Seed
	if opts.Seed != 0 {
		spec.Seed = opts.Seed
		seed = opts.Seed
	}
	dep, err := Build(spec, opts.Build)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	client, err := dep.NewLoadClient()
	if err != nil {
		return nil, err
	}
	defer client.Close()

	phases := LoadPhases(load)
	scenario := dep.StartScenario(spec.Scenario)
	results := loadgen.RunSchedule(client.Issue, phases, seed, opts.DrainTimeout)
	scenario.Stop()
	return &RunResult{Phases: results, Events: scenario.Log()}, nil
}
