package topo

import (
	"fmt"
	"sort"

	"musuite/internal/loadgen"
)

// The kind registry maps spec kind names to builders for the registered
// benchmark services — full deployments (mid-tier plus leaves) that a spec
// places as one node.  Registration carries the kind's parameter allowlist
// so Validate can reject a typo'd param at parse time instead of silently
// running the default.

// RegisteredService is a registered kind's built deployment: the shard
// groups upstream edges dial (for registered kinds, the single mid-tier
// address), the workload issuer driving the service's canonical query
// stream, and teardown.
type RegisteredService struct {
	// Groups lists replica addresses per shard for upstream dialing.
	Groups [][]string
	// Issue launches one request of the service's canonical workload.
	Issue loadgen.IssueFunc
	// Closers tear the deployment down, last first.
	Closers []func()
}

type registeredBuilder func(spec *Spec, svc *ServiceSpec, opts BuildOptions) (*RegisteredService, error)

type registration struct {
	build  registeredBuilder
	params map[string]bool
}

var registry = map[string]*registration{}

// registerKind installs a builder for a registered kind; called from this
// package's init functions only.
func registerKind(name string, params []string, build registeredBuilder) {
	allowed := map[string]bool{}
	for _, p := range params {
		allowed[p] = true
	}
	registry[name] = &registration{build: build, params: allowed}
}

// registeredKind reports whether kind names a registered benchmark.
func registeredKind(kind string) bool {
	_, ok := registry[kind]
	return ok
}

// RegisteredKinds lists the registered kind names.
func RegisteredKinds() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkParams validates a service's params against its kind's allowlist
// (synthetic kinds accept none).
func checkParams(svc *ServiceSpec) error {
	if len(svc.Params) == 0 {
		return nil
	}
	reg := registry[svc.Kind]
	if reg == nil {
		return fmt.Errorf("topo: services.%s: kind %q accepts no params", svc.Name, svc.Kind)
	}
	for _, k := range sortedParamNames(svc.Params) {
		if !reg.params[k] {
			return fmt.Errorf("topo: services.%s.params: kind %q has no param %q", svc.Name, svc.Kind, k)
		}
	}
	return nil
}

func sortedParamNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// paramInt reads an integer param with a default.
func paramInt(svc *ServiceSpec, key string, def int) (int, error) {
	s, ok := svc.Params[key]
	if !ok || s == "" {
		return def, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("topo: services.%s.params.%s: invalid integer %q", svc.Name, key, s)
	}
	return n, nil
}
