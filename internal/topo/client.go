package topo

import (
	"fmt"
	"sort"
	"sync/atomic"

	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/trace"
)

// LoadClient drives a deployment's entry service: a synthetic entry is
// driven with the generic keyed protocol over its declared ops (weighted
// by the spec's load mix), a registered entry with its own canonical
// workload.  Requests round-robin across entry replicas, and sampled
// requests carry a root span context so the whole DAG traces as one tree.
type LoadClient struct {
	clients []*rpc.Client
	ops     []string
	seed    uint64
	next    atomic.Uint64
	sampler *trace.Sampler
	issue   loadgen.IssueFunc
}

// NewLoadClient dials the deployment's entry service.
func (d *Deployment) NewLoadClient() (*LoadClient, error) {
	entry := d.Entry()
	lc := &LoadClient{seed: uint64(d.Spec.Seed)}
	if d.opts.Spans != nil {
		every := d.opts.SpanSample
		if every < 1 {
			every = 1
		}
		lc.sampler = trace.NewSampler(every)
	}
	if entry.issue != nil {
		lc.issue = entry.issue.Issue
		return lc, nil
	}
	var clientOpts *rpc.ClientOptions
	if d.opts.Spans != nil {
		clientOpts = &rpc.ClientOptions{Spans: d.opts.Spans}
	}
	for _, addr := range d.EntryAddrs() {
		c, err := rpc.Dial(addr, clientOpts)
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("topo: dialing entry %s: %w", addr, err)
		}
		lc.clients = append(lc.clients, c)
	}
	lc.ops = expandMix(entry.Spec, d.Spec.Load.Mix)
	if len(lc.ops) == 0 {
		return nil, fmt.Errorf("topo: entry %q has no ops to drive", entry.Spec.Name)
	}
	return lc, nil
}

// expandMix turns op weights into a rotation list, so a deterministic
// counter realizes the mix exactly.
func expandMix(entry *ServiceSpec, mix map[string]int) []string {
	if len(mix) == 0 {
		return sortedOpNames(entry.Ops)
	}
	names := make([]string, 0, len(mix))
	for op := range mix {
		names = append(names, op)
	}
	sort.Strings(names)
	var ops []string
	for _, op := range names {
		for i := 0; i < mix[op]; i++ {
			ops = append(ops, op)
		}
	}
	return ops
}

// Issue launches one request; it has the loadgen.IssueFunc shape.
func (lc *LoadClient) Issue(done chan *rpc.Call) *rpc.Call {
	if lc.issue != nil {
		return lc.issue(done)
	}
	i := lc.next.Add(1)
	op := lc.ops[i%uint64(len(lc.ops))]
	c := lc.clients[i%uint64(len(lc.clients))]
	payload := encodeSynthetic(splitmix64(lc.seed+i), 0)
	if sc := lc.sampler.Context(); sc.Sampled() {
		return c.GoSpan(op, payload, sc, nil, done)
	}
	return c.Go(op, payload, nil, done)
}

// Close tears the client down (registered-entry clients are owned by the
// deployment and close with it).
func (lc *LoadClient) Close() {
	for _, c := range lc.clients {
		c.Close()
	}
	lc.clients = nil
}

// Load-shape defaults for specs that omit them.
const (
	defaultLoadQPS    = 200.0
	defaultLoadFactor = 4.0
	defaultLoadSteps  = 3
)

// LoadPhases expands a spec's load shape into loadgen phases: steady is a
// single phase, the patterned shapes reuse loadgen's diurnal staircase,
// flash-crowd spike, and burst square wave.
func LoadPhases(l LoadSpec) []loadgen.LoadPhase {
	qps := l.QPS
	if qps <= 0 {
		qps = defaultLoadQPS
	}
	dur := l.Duration
	if dur <= 0 {
		dur = 5e9 // 5s
	}
	factor := l.Factor
	if factor <= 1 {
		factor = defaultLoadFactor
	}
	switch l.Pattern {
	case PatternDiurnal:
		steps := l.Steps
		if steps < 1 {
			steps = defaultLoadSteps
		}
		return loadgen.Diurnal(qps, qps*factor, steps, dur)
	case PatternFlashCrowd:
		baseline := dur * 2 / 5
		return loadgen.FlashCrowd(qps, factor, baseline, dur-2*baseline)
	case PatternBurst:
		return loadgen.Burst(qps, factor, l.Period, l.Duty, dur)
	default:
		return []loadgen.LoadPhase{{Name: "steady", QPS: qps, Duration: dur}}
	}
}
