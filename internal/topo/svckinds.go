package topo

import (
	"sync/atomic"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/services/recommend"
	"musuite/internal/services/router"
	"musuite/internal/services/setalgebra"
	"musuite/internal/trace"
)

// The four μSuite benchmarks as registered spec kinds: a topology can
// place any of them as a node and the builder deploys the same mid-tier +
// leaf cluster the handwritten harness does, parameterized by the spec's
// shards/replicas/workers and dataset params.  The golden-equivalence
// tests pin spec-driven deployments to the handwritten wiring: same
// responses, same TierStats shapes.

func init() {
	registerKind("hdsearch", []string{"corpus", "dim", "clusters", "queries", "leaf-workers"}, buildHDSearch)
	registerKind("router", []string{"keys", "value-size", "leaf-workers"}, buildRouter)
	registerKind("setalgebra", []string{"docs", "vocab", "mean-doc-len", "stop-terms", "leaf-workers"}, buildSetAlgebra)
	registerKind("recommend", []string{"users", "items", "ratings", "leaf-workers"}, buildRecommend)
}

// kindCoreOptions maps the spec's sizing onto the mid-tier options.
func kindCoreOptions(svc *ServiceSpec, opts BuildOptions) core.Options {
	return core.Options{
		Workers: svc.Workers,
		Probe:   opts.Probe,
		Spans:   opts.Spans,
	}
}

func kindLeafOptions(svc *ServiceSpec, opts BuildOptions) (core.LeafOptions, error) {
	workers, err := paramInt(svc, "leaf-workers", 0)
	if err != nil {
		return core.LeafOptions{}, err
	}
	return core.LeafOptions{
		Workers: workers,
		Probe:   opts.Probe,
		Spans:   opts.Spans,
		Kernel:  kernel.New(kernel.Config{Probe: opts.Probe}),
	}, nil
}

// kindSampler builds the front-end span sampler for a registered entry.
func kindSampler(opts BuildOptions) *trace.Sampler {
	if opts.Spans == nil {
		return nil
	}
	every := opts.SpanSample
	if every < 1 {
		every = 1
	}
	return trace.NewSampler(every)
}

func kindClientOptions(opts BuildOptions) *rpc.ClientOptions {
	if opts.Spans == nil {
		return nil
	}
	return &rpc.ClientOptions{Spans: opts.Spans}
}

func buildHDSearch(spec *Spec, svc *ServiceSpec, opts BuildOptions) (*RegisteredService, error) {
	corpusN, err := paramInt(svc, "corpus", 2000)
	if err != nil {
		return nil, err
	}
	dim, err := paramInt(svc, "dim", 32)
	if err != nil {
		return nil, err
	}
	clusters, err := paramInt(svc, "clusters", 10)
	if err != nil {
		return nil, err
	}
	nq, err := paramInt(svc, "queries", 512)
	if err != nil {
		return nil, err
	}
	leafOpts, err := kindLeafOptions(svc, opts)
	if err != nil {
		return nil, err
	}
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: corpusN, Dim: dim, Clusters: clusters, Seed: spec.Seed,
	})
	cl, err := hdsearch.StartCluster(hdsearch.ClusterConfig{
		Corpus:       corpus,
		Shards:       svc.Shards,
		LeafReplicas: svc.Replicas,
		MidTier:      kindCoreOptions(svc, opts),
		Leaf:         leafOpts,
	})
	if err != nil {
		return nil, err
	}
	client, err := hdsearch.DialClient(cl.Addr, kindClientOptions(opts))
	if err != nil {
		cl.Close()
		return nil, err
	}
	queries := corpus.Queries(nq, spec.Seed+100)
	sampler := kindSampler(opts)
	var next atomic.Uint64
	return &RegisteredService{
		Groups: [][]string{{cl.Addr}},
		Issue: func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(q, 5, sc, done)
			}
			return client.Go(q, 5, done)
		},
		Closers: []func(){cl.Close, func() { client.Close() }},
	}, nil
}

func buildRouter(spec *Spec, svc *ServiceSpec, opts BuildOptions) (*RegisteredService, error) {
	keys, err := paramInt(svc, "keys", 2000)
	if err != nil {
		return nil, err
	}
	valueSize, err := paramInt(svc, "value-size", 64)
	if err != nil {
		return nil, err
	}
	leafOpts, err := kindLeafOptions(svc, opts)
	if err != nil {
		return nil, err
	}
	cl, err := router.StartCluster(router.ClusterConfig{
		Leaves:   svc.Shards,
		Replicas: svc.Replicas,
		MidTier:  kindCoreOptions(svc, opts),
		Leaf:     leafOpts,
	})
	if err != nil {
		return nil, err
	}
	client, err := router.DialClient(cl.Addr, kindClientOptions(opts))
	if err != nil {
		cl.Close()
		return nil, err
	}
	kvtrace := dataset.NewKVTrace(dataset.KVTraceConfig{
		Keys: keys, ValueSize: valueSize, Seed: spec.Seed + 200,
	})
	for _, op := range kvtrace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			client.Close()
			cl.Close()
			return nil, err
		}
	}
	ops := kvtrace.Ops(1 << 14)
	sampler := kindSampler(opts)
	var next atomic.Uint64
	return &RegisteredService{
		Groups: [][]string{{cl.Addr}},
		Issue: func(done chan *rpc.Call) *rpc.Call {
			op := ops[next.Add(1)%uint64(len(ops))]
			if sc := sampler.Context(); sc.Sampled() {
				if op.Kind == dataset.KVGet {
					return client.GoGetSpan(op.Key, sc, done)
				}
				return client.GoSetSpan(op.Key, op.Value, sc, done)
			}
			if op.Kind == dataset.KVGet {
				return client.GoGet(op.Key, done)
			}
			return client.GoSet(op.Key, op.Value, done)
		},
		Closers: []func(){cl.Close, func() { client.Close() }},
	}, nil
}

func buildSetAlgebra(spec *Spec, svc *ServiceSpec, opts BuildOptions) (*RegisteredService, error) {
	docs, err := paramInt(svc, "docs", 1200)
	if err != nil {
		return nil, err
	}
	vocab, err := paramInt(svc, "vocab", 3000)
	if err != nil {
		return nil, err
	}
	meanLen, err := paramInt(svc, "mean-doc-len", 60)
	if err != nil {
		return nil, err
	}
	stopTerms, err := paramInt(svc, "stop-terms", 10)
	if err != nil {
		return nil, err
	}
	leafOpts, err := kindLeafOptions(svc, opts)
	if err != nil {
		return nil, err
	}
	corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: docs, VocabSize: vocab, MeanDocLen: meanLen, Seed: spec.Seed + 300,
	})
	cl, err := setalgebra.StartCluster(setalgebra.ClusterConfig{
		Corpus:       corpus,
		Shards:       svc.Shards,
		StopTerms:    stopTerms,
		LeafReplicas: svc.Replicas,
		MidTier:      kindCoreOptions(svc, opts),
		Leaf:         leafOpts,
	})
	if err != nil {
		return nil, err
	}
	client, err := setalgebra.DialClient(cl.Addr, kindClientOptions(opts))
	if err != nil {
		cl.Close()
		return nil, err
	}
	queries := corpus.Queries(10000, 10, spec.Seed+301)
	sampler := kindSampler(opts)
	var next atomic.Uint64
	return &RegisteredService{
		Groups: [][]string{{cl.Addr}},
		Issue: func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(q, sc, done)
			}
			return client.Go(q, done)
		},
		Closers: []func(){cl.Close, func() { client.Close() }},
	}, nil
}

func buildRecommend(spec *Spec, svc *ServiceSpec, opts BuildOptions) (*RegisteredService, error) {
	users, err := paramInt(svc, "users", 60)
	if err != nil {
		return nil, err
	}
	items, err := paramInt(svc, "items", 80)
	if err != nil {
		return nil, err
	}
	ratings, err := paramInt(svc, "ratings", 2500)
	if err != nil {
		return nil, err
	}
	leafOpts, err := kindLeafOptions(svc, opts)
	if err != nil {
		return nil, err
	}
	corpus := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: users, Items: items, Ratings: ratings, Seed: spec.Seed + 400,
	})
	cl, err := recommend.StartCluster(recommend.ClusterConfig{
		Corpus:       corpus,
		Shards:       svc.Shards,
		Seed:         spec.Seed + 401,
		LeafReplicas: svc.Replicas,
		MidTier:      kindCoreOptions(svc, opts),
		Leaf:         leafOpts,
	})
	if err != nil {
		return nil, err
	}
	client, err := recommend.DialClient(cl.Addr, kindClientOptions(opts))
	if err != nil {
		cl.Close()
		return nil, err
	}
	pairs := corpus.QueryPairs(1000, spec.Seed+402)
	sampler := kindSampler(opts)
	var next atomic.Uint64
	return &RegisteredService{
		Groups: [][]string{{cl.Addr}},
		Issue: func(done chan *rpc.Call) *rpc.Call {
			p := pairs[next.Add(1)%uint64(len(pairs))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(p[0], p[1], sc, done)
			}
			return client.Go(p[0], p[1], done)
		},
		Closers: []func(){cl.Close, func() { client.Close() }},
	}, nil
}
