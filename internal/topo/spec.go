package topo

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"
)

// Spec is a parsed topology: a named DAG of services, the load shape to
// offer its entry, and an optional scenario script of timed degradations.
type Spec struct {
	// Name labels the topology in output.
	Name string
	// Entry names the service the load generator drives.
	Entry string
	// Seed drives every deterministic choice (datasets, key streams, load).
	Seed int64
	// Services maps name → definition.
	Services map[string]*ServiceSpec
	// Load is the offered-load shape (optional; runners have defaults).
	Load LoadSpec
	// Scenario is the timed degradation script (optional).
	Scenario []EventSpec
}

// ServiceSpec defines one node of the DAG.
type ServiceSpec struct {
	// Name is the service's key in Spec.Services.
	Name string
	// Kind selects the builder: the synthetic kinds "synthetic" (a
	// mid-tier running declarative ops), "compute", "cache", and "store"
	// (leaf tiers), or a registered benchmark kind ("hdsearch", "router",
	// "setalgebra", "recommend").
	Kind string
	// Shards and Replicas size the tier: Shards data partitions, each
	// served by Replicas instances (defaults 1/1).
	Shards, Replicas int
	// Workers sizes each instance's worker pool (default: core's).
	Workers int
	// Work is the simulated service time per request of synthetic kinds.
	Work time.Duration
	// ReplyBytes pads synthetic replies to model response weight.
	ReplyBytes int
	// HitRatio, for cache kinds, short-circuits a real store with a
	// key-stable probabilistic hit model in [0,1]; zero keeps real lookups.
	HitRatio float64
	// MaxInflight, when positive, arms the core admission controller with
	// this initial/max concurrency limit (synthetic mid-tiers only).
	MaxInflight int
	// Edges maps edge name → downstream policy (synthetic mid-tiers only).
	Edges map[string]*EdgeSpec
	// Ops maps method name → declarative call program (synthetic mid-tiers
	// only).
	Ops map[string]*OpSpec
	// Params carries kind-specific scalars (corpus sizes, value sizes...)
	// interpreted by registered kind builders.
	Params map[string]string
}

// EdgeSpec is one named downstream edge: its target service and the
// per-edge call policy the core framework applies to every call it carries.
type EdgeSpec struct {
	// Name is the edge's key in ServiceSpec.Edges.
	Name string
	// To names the target service.
	To string
	// Timeout bounds each fan-out on the edge (0 = wait forever).
	Timeout time.Duration
	// Retries is the per-call retry allowance.
	Retries int
	// HedgePct arms hedged requests tracking this leaf-latency percentile
	// (0 disables hedging).
	HedgePct float64
	// HedgeDelay fixes the hedge delay instead of tracking the percentile.
	HedgeDelay time.Duration
	// MaxBatch arms cross-request batching with this carrier cap (≤1 off).
	MaxBatch int
	// BatchDelay fixes the batch flush delay instead of digest tracking.
	BatchDelay time.Duration
}

// OpSpec is one declarative operation of a synthetic mid-tier: simulated
// local work plus a staged program of downstream calls.
type OpSpec struct {
	// Name is the op's key in ServiceSpec.Ops and its RPC method name.
	Name string
	// Work is simulated local service time before the calls issue.
	Work time.Duration
	// Calls is the downstream program; calls sharing a Stage issue in
	// parallel, stages run in ascending order.
	Calls []CallSpec
}

// CallSpec is one downstream call of an op.
type CallSpec struct {
	// Edge names the edge the call travels.
	Edge string
	// Method is the downstream method ("do"/"get"/"set" for synthetic
	// leaves, an op name for synthetic mid-tiers).
	Method string
	// Mode is "one" (route by key hash, default) or "all" (broadcast to
	// every shard and merge).
	Mode string
	// Stage orders the call; equal stages run in parallel (default 0).
	Stage int
	// Optional calls tolerate failure: an error or miss degrades the
	// response instead of failing it.
	Optional bool
	// MissEdge, on a cache-get miss, names the edge to fetch from.
	MissEdge string
	// Fill writes a miss-fetched value back through Edge ("set") before
	// the op completes.
	Fill bool
}

// LoadSpec is the offered-load shape for the runner.
type LoadSpec struct {
	// Pattern is "steady" (default), "diurnal", "flashcrowd", or "burst".
	Pattern string
	// QPS is the base offered rate (pattern peak rates derive from it).
	QPS float64
	// Duration is the offered-load window.
	Duration time.Duration
	// Factor scales bursts/spikes over the base rate (default 4).
	Factor float64
	// Period and Duty shape the burst square wave.
	Period, Duty time.Duration
	// Steps is the diurnal staircase's steps per side (default 3).
	Steps int
	// Mix weights entry ops (op name → relative weight); empty drives the
	// entry's ops uniformly.
	Mix map[string]int
}

// EventSpec is one timed scenario event.  Exactly one of Target (a
// service-level degradation) or Edge (latency injection on a named
// "service/edge") must be set.
type EventSpec struct {
	// At is the event's start offset from the beginning of the run; For is
	// its duration (0 = permanent).
	At, For time.Duration
	// Target names a synthetic service to degrade.
	Target string
	// Slow adds simulated service time to every request of Target.
	Slow time.Duration
	// ErrorRate fails this fraction of Target's requests in [0,1].
	ErrorRate float64
	// Edge names a "service/edge" to inject latency on (caller side).
	Edge string
	// Delay is the injected per-call latency on Edge.
	Delay time.Duration
}

// LoadSpec pattern names.
const (
	PatternSteady     = "steady"
	PatternDiurnal    = "diurnal"
	PatternFlashCrowd = "flashcrowd"
	PatternBurst      = "burst"
)

// ParseSpec decodes and validates a topology spec from YAML source.
func ParseSpec(src []byte) (*Spec, error) {
	root, err := DecodeYAML(src)
	if err != nil {
		return nil, err
	}
	spec, err := decodeSpec(root)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// LoadSpecFile reads and parses a topology spec file.
func LoadSpecFile(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := ParseSpec(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// ServiceNames lists the spec's services in deterministic order.
func (s *Spec) ServiceNames() []string {
	names := make([]string, 0, len(s.Services))
	for n := range s.Services {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- strict tree → spec decoding ---

// obj wraps one decoded mapping for strict field-by-field extraction:
// every read marks its key used, and finish() fails on unknown keys, so a
// typo in a spec is an error instead of a silently ignored knob.
type obj struct {
	m    map[string]any
	used map[string]bool
	path string
}

func asObj(v any, path string) (*obj, error) {
	if v == nil {
		return &obj{m: map[string]any{}, used: map[string]bool{}, path: path}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("topo: %s: expected a mapping, got %s", path, typeName(v))
	}
	return &obj{m: m, used: map[string]bool{}, path: path}, nil
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "mapping"
	case []any:
		return "sequence"
	case string:
		return "scalar"
	case nil:
		return "empty value"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func (o *obj) raw(key string) (any, bool) {
	v, ok := o.m[key]
	if ok {
		o.used[key] = true
	}
	return v, ok
}

func (o *obj) str(key, def string) (string, error) {
	v, ok := o.raw(key)
	if !ok || v == nil {
		return def, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("topo: %s.%s: expected a scalar, got %s", o.path, key, typeName(v))
	}
	return s, nil
}

func (o *obj) integer(key string, def int) (int, error) {
	s, err := o.str(key, "")
	if err != nil || s == "" {
		return def, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("topo: %s.%s: invalid integer %q", o.path, key, s)
	}
	return n, nil
}

func (o *obj) int64(key string, def int64) (int64, error) {
	s, err := o.str(key, "")
	if err != nil || s == "" {
		return def, err
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("topo: %s.%s: invalid integer %q", o.path, key, s)
	}
	return n, nil
}

func (o *obj) float(key string, def float64) (float64, error) {
	s, err := o.str(key, "")
	if err != nil || s == "" {
		return def, err
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("topo: %s.%s: invalid number %q", o.path, key, s)
	}
	return f, nil
}

func (o *obj) duration(key string, def time.Duration) (time.Duration, error) {
	s, err := o.str(key, "")
	if err != nil || s == "" {
		return def, err
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("topo: %s.%s: invalid duration %q", o.path, key, s)
	}
	if d < 0 {
		return 0, fmt.Errorf("topo: %s.%s: negative duration %q", o.path, key, s)
	}
	return d, nil
}

func (o *obj) boolean(key string, def bool) (bool, error) {
	s, err := o.str(key, "")
	if err != nil || s == "" {
		return def, err
	}
	switch s {
	case "true", "yes", "on":
		return true, nil
	case "false", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("topo: %s.%s: invalid boolean %q", o.path, key, s)
}

func (o *obj) finish() error {
	for k := range o.m {
		if !o.used[k] {
			return fmt.Errorf("topo: %s: unknown field %q", o.path, k)
		}
	}
	return nil
}

// sortedKeys iterates a decoded mapping deterministically.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func decodeSpec(root any) (*Spec, error) {
	o, err := asObj(root, "spec")
	if err != nil {
		return nil, err
	}
	spec := &Spec{Services: map[string]*ServiceSpec{}}
	if spec.Name, err = o.str("topology", ""); err != nil {
		return nil, err
	}
	if spec.Entry, err = o.str("entry", ""); err != nil {
		return nil, err
	}
	if spec.Seed, err = o.int64("seed", 1); err != nil {
		return nil, err
	}
	rawSvcs, ok := o.raw("services")
	if !ok {
		return nil, fmt.Errorf("topo: spec: missing required field %q", "services")
	}
	svcs, err := asObj(rawSvcs, "services")
	if err != nil {
		return nil, err
	}
	for _, name := range sortedKeys(svcs.m) {
		v, _ := svcs.raw(name)
		svc, err := decodeService(name, v)
		if err != nil {
			return nil, err
		}
		spec.Services[name] = svc
	}
	if raw, ok := o.raw("load"); ok {
		if spec.Load, err = decodeLoad(raw); err != nil {
			return nil, err
		}
	}
	if raw, ok := o.raw("scenario"); ok {
		if spec.Scenario, err = decodeScenario(raw); err != nil {
			return nil, err
		}
	}
	return spec, o.finish()
}

func decodeService(name string, v any) (*ServiceSpec, error) {
	path := "services." + name
	o, err := asObj(v, path)
	if err != nil {
		return nil, err
	}
	svc := &ServiceSpec{Name: name}
	if svc.Kind, err = o.str("kind", ""); err != nil {
		return nil, err
	}
	if svc.Kind == "" {
		return nil, fmt.Errorf("topo: %s: missing required field %q", path, "kind")
	}
	if svc.Shards, err = o.integer("shards", 1); err != nil {
		return nil, err
	}
	if svc.Replicas, err = o.integer("replicas", 1); err != nil {
		return nil, err
	}
	if svc.Workers, err = o.integer("workers", 0); err != nil {
		return nil, err
	}
	if svc.Work, err = o.duration("work", 0); err != nil {
		return nil, err
	}
	if svc.ReplyBytes, err = o.integer("reply-bytes", 0); err != nil {
		return nil, err
	}
	if svc.HitRatio, err = o.float("hit-ratio", 0); err != nil {
		return nil, err
	}
	if svc.MaxInflight, err = o.integer("max-inflight", 0); err != nil {
		return nil, err
	}
	if raw, ok := o.raw("edges"); ok {
		eo, err := asObj(raw, path+".edges")
		if err != nil {
			return nil, err
		}
		svc.Edges = map[string]*EdgeSpec{}
		for _, en := range sortedKeys(eo.m) {
			ev, _ := eo.raw(en)
			edge, err := decodeEdge(path, en, ev)
			if err != nil {
				return nil, err
			}
			svc.Edges[en] = edge
		}
	}
	if raw, ok := o.raw("ops"); ok {
		oo, err := asObj(raw, path+".ops")
		if err != nil {
			return nil, err
		}
		svc.Ops = map[string]*OpSpec{}
		for _, on := range sortedKeys(oo.m) {
			ov, _ := oo.raw(on)
			op, err := decodeOp(path, on, ov)
			if err != nil {
				return nil, err
			}
			svc.Ops[on] = op
		}
	}
	if raw, ok := o.raw("params"); ok {
		po, err := asObj(raw, path+".params")
		if err != nil {
			return nil, err
		}
		svc.Params = map[string]string{}
		for _, pn := range sortedKeys(po.m) {
			pv, err := po.str(pn, "")
			if err != nil {
				return nil, err
			}
			svc.Params[pn] = pv
		}
	}
	return svc, o.finish()
}

func decodeEdge(svcPath, name string, v any) (*EdgeSpec, error) {
	path := svcPath + ".edges." + name
	o, err := asObj(v, path)
	if err != nil {
		return nil, err
	}
	e := &EdgeSpec{Name: name}
	if e.To, err = o.str("to", ""); err != nil {
		return nil, err
	}
	if e.To == "" {
		return nil, fmt.Errorf("topo: %s: missing required field %q", path, "to")
	}
	if e.Timeout, err = o.duration("timeout", 0); err != nil {
		return nil, err
	}
	if e.Retries, err = o.integer("retries", 0); err != nil {
		return nil, err
	}
	if e.HedgePct, err = o.float("hedge-pct", 0); err != nil {
		return nil, err
	}
	if e.HedgeDelay, err = o.duration("hedge-delay", 0); err != nil {
		return nil, err
	}
	if e.MaxBatch, err = o.integer("max-batch", 0); err != nil {
		return nil, err
	}
	if e.BatchDelay, err = o.duration("batch-delay", 0); err != nil {
		return nil, err
	}
	return e, o.finish()
}

func decodeOp(svcPath, name string, v any) (*OpSpec, error) {
	path := svcPath + ".ops." + name
	o, err := asObj(v, path)
	if err != nil {
		return nil, err
	}
	op := &OpSpec{Name: name}
	if op.Work, err = o.duration("work", 0); err != nil {
		return nil, err
	}
	if raw, ok := o.raw("calls"); ok && raw != nil {
		seq, ok := raw.([]any)
		if !ok {
			return nil, fmt.Errorf("topo: %s.calls: expected a sequence, got %s", path, typeName(raw))
		}
		for i, cv := range seq {
			call, err := decodeCallSpec(fmt.Sprintf("%s.calls[%d]", path, i), cv)
			if err != nil {
				return nil, err
			}
			op.Calls = append(op.Calls, call)
		}
	}
	return op, o.finish()
}

func decodeCallSpec(path string, v any) (CallSpec, error) {
	o, err := asObj(v, path)
	if err != nil {
		return CallSpec{}, err
	}
	var c CallSpec
	if c.Edge, err = o.str("edge", ""); err != nil {
		return c, err
	}
	if c.Edge == "" {
		return c, fmt.Errorf("topo: %s: missing required field %q", path, "edge")
	}
	if c.Method, err = o.str("method", "do"); err != nil {
		return c, err
	}
	if c.Mode, err = o.str("mode", "one"); err != nil {
		return c, err
	}
	if c.Mode != "one" && c.Mode != "all" {
		return c, fmt.Errorf("topo: %s: invalid mode %q (want \"one\" or \"all\")", path, c.Mode)
	}
	if c.Stage, err = o.integer("stage", 0); err != nil {
		return c, err
	}
	if c.Optional, err = o.boolean("optional", false); err != nil {
		return c, err
	}
	if c.MissEdge, err = o.str("miss-edge", ""); err != nil {
		return c, err
	}
	if c.Fill, err = o.boolean("fill", false); err != nil {
		return c, err
	}
	return c, o.finish()
}

func decodeLoad(v any) (LoadSpec, error) {
	o, err := asObj(v, "load")
	if err != nil {
		return LoadSpec{}, err
	}
	var l LoadSpec
	if l.Pattern, err = o.str("pattern", PatternSteady); err != nil {
		return l, err
	}
	switch l.Pattern {
	case PatternSteady, PatternDiurnal, PatternFlashCrowd, PatternBurst:
	default:
		return l, fmt.Errorf("topo: load.pattern: unknown pattern %q", l.Pattern)
	}
	if l.QPS, err = o.float("qps", 0); err != nil {
		return l, err
	}
	if l.Duration, err = o.duration("duration", 0); err != nil {
		return l, err
	}
	if l.Factor, err = o.float("factor", 0); err != nil {
		return l, err
	}
	if l.Period, err = o.duration("period", 0); err != nil {
		return l, err
	}
	if l.Duty, err = o.duration("duty", 0); err != nil {
		return l, err
	}
	if l.Steps, err = o.integer("steps", 0); err != nil {
		return l, err
	}
	if raw, ok := o.raw("mix"); ok {
		mo, err := asObj(raw, "load.mix")
		if err != nil {
			return l, err
		}
		l.Mix = map[string]int{}
		for _, k := range sortedKeys(mo.m) {
			w, err := mo.integer(k, 0)
			if err != nil {
				return l, err
			}
			if w <= 0 {
				return l, fmt.Errorf("topo: load.mix.%s: weight must be positive", k)
			}
			l.Mix[k] = w
		}
	}
	return l, o.finish()
}

func decodeScenario(v any) ([]EventSpec, error) {
	if v == nil {
		return nil, nil
	}
	seq, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("topo: scenario: expected a sequence, got %s", typeName(v))
	}
	var events []EventSpec
	for i, ev := range seq {
		path := fmt.Sprintf("scenario[%d]", i)
		o, err := asObj(ev, path)
		if err != nil {
			return nil, err
		}
		var e EventSpec
		if e.At, err = o.duration("at", 0); err != nil {
			return nil, err
		}
		if e.For, err = o.duration("for", 0); err != nil {
			return nil, err
		}
		if e.Target, err = o.str("target", ""); err != nil {
			return nil, err
		}
		if e.Slow, err = o.duration("slow", 0); err != nil {
			return nil, err
		}
		if e.ErrorRate, err = o.float("error-rate", 0); err != nil {
			return nil, err
		}
		if e.Edge, err = o.str("edge", ""); err != nil {
			return nil, err
		}
		if e.Delay, err = o.duration("delay", 0); err != nil {
			return nil, err
		}
		if err := o.finish(); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}
