package topo

import (
	"sync"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/trace"
)

// fourDeepSpec is a 4-level DAG: fe -> agg -> mid -> leaf, exercising
// mid-tiers calling mid-tiers calling leaves with per-edge policy.
const fourDeepSpec = `
topology: four-deep
entry: fe
services:
  fe:
    kind: synthetic
    edges:
      down: {to: agg, timeout: 400ms}
    ops:
      q:
        calls:
          - {edge: down, method: merge}
  agg:
    kind: synthetic
    shards: 2
    edges:
      mid: {to: mid, timeout: 300ms}
    ops:
      merge:
        calls:
          - {edge: mid, method: fetch, mode: all}
  mid:
    kind: synthetic
    edges:
      leaf: {to: leaf, timeout: 200ms}
    ops:
      fetch:
        calls:
          - {edge: leaf, method: do}
  leaf:
    kind: compute
    shards: 2
    work: 50us
`

func buildSpec(t *testing.T, src string, opts BuildOptions) *Deployment {
	t.Helper()
	spec, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func dialEntry(t *testing.T, d *Deployment) *rpc.Client {
	t.Helper()
	c, err := rpc.Dial(d.EntryAddrs()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBuildFourDeepRoundTrip(t *testing.T) {
	d := buildSpec(t, fourDeepSpec, BuildOptions{})
	if got := len(d.Service("leaf").leaves); got != 2 {
		t.Fatalf("leaf instances=%d want 2", got)
	}
	if got := len(d.Service("agg").mids); got != 2 {
		t.Fatalf("agg instances=%d want 2", got)
	}
	c := dialEntry(t, d)
	for _, key := range []uint64{1, 99, 1 << 40} {
		reply, err := c.Call("q", encodeSynthetic(key, 0))
		if err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		got, err := decodeSynthetic(reply)
		if err != nil || got != key {
			t.Fatalf("reply key=%d err=%v, want %d", got, err, key)
		}
	}
	// Every tier actually served: the request really traversed 4 levels.
	for _, svc := range []string{"fe", "agg", "mid"} {
		stats := d.Service(svc).Stats()
		var served uint64
		for _, s := range stats {
			if s.Role != "midtier" {
				t.Fatalf("%s role=%q", svc, s.Role)
			}
			served += s.Served
		}
		if served < 3 {
			t.Fatalf("%s served=%d want ≥3", svc, served)
		}
	}
	var leafServed uint64
	for _, l := range d.Service("leaf").leaves {
		leafServed += l.Served()
	}
	if leafServed < 3 {
		t.Fatalf("leaf served=%d", leafServed)
	}
}

const cacheSpec = `
topology: cache-demo
entry: fe
services:
  fe:
    kind: synthetic
    edges:
      c: {to: cache, timeout: 100ms}
      db: {to: db, timeout: 100ms}
    ops:
      get:
        calls:
          - {edge: c, method: get, miss-edge: db, fill: true}
  cache:
    kind: cache
  db:
    kind: store
    reply-bytes: 32
`

func served(s *Service) uint64 {
	var total uint64
	for _, l := range s.leaves {
		total += l.Served()
	}
	return total
}

func TestCacheMissFillThenHit(t *testing.T) {
	d := buildSpec(t, cacheSpec, BuildOptions{})
	c := dialEntry(t, d)
	const key = 0xfeedface

	if _, err := c.Call("get", encodeSynthetic(key, 0)); err != nil {
		t.Fatal(err)
	}
	if got := served(d.Service("db")); got != 1 {
		t.Fatalf("db served=%d after miss, want 1 (probe missed, store fetched)", got)
	}
	// probe (miss) + fill set
	if got := served(d.Service("cache")); got != 2 {
		t.Fatalf("cache served=%d after miss+fill, want 2", got)
	}

	if _, err := c.Call("get", encodeSynthetic(key, 0)); err != nil {
		t.Fatal(err)
	}
	if got := served(d.Service("db")); got != 1 {
		t.Fatalf("db served=%d after warm hit, want still 1", got)
	}
	if got := served(d.Service("cache")); got != 3 {
		t.Fatalf("cache served=%d after warm hit, want 3", got)
	}
}

const scenarioSpec = `
topology: scenario-demo
entry: fe
services:
  fe:
    kind: synthetic
    edges:
      down: {to: leaf, timeout: 500ms}
    ops:
      q:
        calls:
          - {edge: down, method: do}
  leaf:
    kind: compute
`

func callLatency(t *testing.T, c *rpc.Client, key uint64) (time.Duration, error) {
	t.Helper()
	start := time.Now()
	_, err := c.Call("q", encodeSynthetic(key, 0))
	return time.Since(start), err
}

func TestScenarioDegradeAndRevert(t *testing.T) {
	d := buildSpec(t, scenarioSpec, BuildOptions{})
	c := dialEntry(t, d)

	if lat, err := callLatency(t, c, 1); err != nil || lat > 100*time.Millisecond {
		t.Fatalf("baseline: lat=%v err=%v", lat, err)
	}

	sc := d.StartScenario([]EventSpec{
		{At: 0, For: 150 * time.Millisecond, Target: "fe", Slow: 30 * time.Millisecond},
	})
	time.Sleep(20 * time.Millisecond) // let the apply timer fire
	if lat, err := callLatency(t, c, 2); err != nil || lat < 30*time.Millisecond {
		t.Fatalf("degraded window: lat=%v err=%v, want ≥30ms", lat, err)
	}
	sc.Wait()
	if lat, err := callLatency(t, c, 3); err != nil || lat > 25*time.Millisecond {
		t.Fatalf("after revert: lat=%v err=%v, want fast again", lat, err)
	}
	log := sc.Log()
	if len(log) != 2 {
		t.Fatalf("event log=%v, want apply+revert", log)
	}
}

func TestScenarioEdgeDelay(t *testing.T) {
	d := buildSpec(t, scenarioSpec, BuildOptions{})
	c := dialEntry(t, d)

	sc := d.StartScenario([]EventSpec{
		{At: 0, Edge: "fe/down", Delay: 25 * time.Millisecond},
	})
	defer sc.Stop()
	time.Sleep(20 * time.Millisecond)
	if lat, err := callLatency(t, c, 7); err != nil || lat < 25*time.Millisecond {
		t.Fatalf("edge delay: lat=%v err=%v, want ≥25ms", lat, err)
	}
}

func TestScenarioErrorInjection(t *testing.T) {
	d := buildSpec(t, scenarioSpec, BuildOptions{})
	c := dialEntry(t, d)

	sc := d.StartScenario([]EventSpec{
		{At: 0, Target: "fe", ErrorRate: 1.0},
	})
	defer sc.Stop()
	time.Sleep(20 * time.Millisecond)
	failures := 0
	for i := uint64(0); i < 8; i++ {
		if _, err := c.Call("q", encodeSynthetic(i, 0)); err != nil {
			failures++
		}
	}
	if failures != 8 {
		t.Fatalf("error-rate 1.0: %d/8 calls failed, want 8", failures)
	}
}

const overloadSpec = `
topology: overload-demo
entry: fe
services:
  fe:
    kind: synthetic
    edges:
      down: {to: neck, timeout: 900ms}
    ops:
      q:
        calls:
          - {edge: down, method: slow}
  neck:
    kind: synthetic
    max-inflight: 1
    work: 30ms
    edges:
      leaf: {to: leaf, timeout: 800ms}
    ops:
      slow:
        calls:
          - {edge: leaf, method: do}
  leaf:
    kind: compute
`

// TestTypedOverloadPropagation drives a bottleneck (max-inflight 1, 30ms
// service time) through an upstream synthetic tier: shed requests must
// surface at the front end as *typed* overload, never untyped errors.
func TestTypedOverloadPropagation(t *testing.T) {
	d := buildSpec(t, overloadSpec, BuildOptions{})
	c := dialEntry(t, d)

	const n = 16
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			_, err := c.Call("q", encodeSynthetic(key, 0))
			errs <- err
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	var failed, typed int
	for err := range errs {
		if err == nil {
			continue
		}
		failed++
		if rpc.IsOverload(err) {
			typed++
		} else {
			t.Errorf("untyped error: %v", err)
		}
	}
	if failed == 0 {
		t.Fatal("no requests shed; bottleneck did not overload")
	}
	if typed != failed {
		t.Fatalf("%d/%d failures typed overload", typed, failed)
	}
}

func treeDepth(n *trace.Node) int {
	best := 0
	for _, c := range n.Children {
		if d := treeDepth(c); d > best {
			best = d
		}
	}
	return best + 1
}

// TestFourDeepTraceTree sends traced requests through the 4-level DAG and
// asserts each trace reassembles into one connected tree whose critical
// path partitions the end-to-end latency exactly — span parenting works
// across arbitrarily deep spec-driven topologies, not just the two-level
// handwritten services.
func TestFourDeepTraceTree(t *testing.T) {
	rec := trace.NewRecorder("topo-test", 4096)
	d := buildSpec(t, fourDeepSpec, BuildOptions{Spans: rec, SpanSample: 1})
	lc, err := d.NewLoadClient()
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	const requests = 4
	done := make(chan *rpc.Call, requests)
	for i := 0; i < requests; i++ {
		lc.Issue(done)
	}
	for i := 0; i < requests; i++ {
		call := <-done
		if call.Err != nil {
			t.Fatalf("request failed: %v", call.Err)
		}
	}

	// Leaf server spans are recorded after the reply flushes, so they can
	// trail the client's completion: poll until the span set stabilizes.
	var spans []trace.Span
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans = rec.Snapshot()
		time.Sleep(20 * time.Millisecond)
		next := rec.Snapshot()
		if len(next) == len(spans) || time.Now().After(deadline) {
			spans = next
			break
		}
	}

	trees := trace.BuildTrees(spans)
	if len(trees) != requests {
		t.Fatalf("trees=%d want %d", len(trees), requests)
	}
	for i, tr := range trees {
		if !tr.Connected() {
			t.Fatalf("tree %d not connected: %d roots over %d spans", i, len(tr.Roots), len(tr.Spans))
		}
		depth := treeDepth(tr.Root())
		if depth < 4 {
			t.Fatalf("tree %d depth=%d, want ≥4 (fe→agg→mid→leaf)", i, depth)
		}
		got, want := trace.PathTotal(tr.CriticalPath()), tr.EndToEnd()
		if got != want {
			t.Fatalf("tree %d critical path %v != end-to-end %v", i, got, want)
		}
	}
}

// TestRunSpec exercises the one-call Run path: build, offered load,
// scenario arming, teardown.
func TestRunSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(fourDeepSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, RunOptions{
		QPS:          300,
		Duration:     400 * time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	offered, completed, errors, shed, dropped := res.Totals()
	if offered == 0 || completed == 0 {
		t.Fatalf("offered=%d completed=%d", offered, completed)
	}
	if errors != 0 || shed != 0 || dropped != 0 {
		t.Fatalf("errors=%d shed=%d dropped=%d, want clean run", errors, shed, dropped)
	}
}

// TestExampleSpecsBuildAndServe builds both exemplar topologies and pushes
// a few requests through each — the in-test version of the CI topo-smoke.
func TestExampleSpecsBuildAndServe(t *testing.T) {
	for _, f := range []string{
		"../../examples/social-network.yaml",
		"../../examples/hotel-reservation.yaml",
	} {
		t.Run(f, func(t *testing.T) {
			spec, err := LoadSpecFile(f)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Build(spec, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			lc, err := d.NewLoadClient()
			if err != nil {
				t.Fatal(err)
			}
			defer lc.Close()
			const requests = 8
			done := make(chan *rpc.Call, requests)
			for i := 0; i < requests; i++ {
				lc.Issue(done)
			}
			for i := 0; i < requests; i++ {
				call := <-done
				if call.Err != nil {
					t.Errorf("request %d: %v", i, call.Err)
				}
			}
		})
	}
}

// TestStatsShape confirms spec-driven tiers report the same TierStats
// shape handwritten services do (role, workers, served counters populated).
func TestStatsShape(t *testing.T) {
	d := buildSpec(t, fourDeepSpec, BuildOptions{})
	c := dialEntry(t, d)
	if _, err := c.Call("q", encodeSynthetic(42, 0)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fe", "agg", "mid"} {
		for i, st := range d.Service(name).Stats() {
			if st.Role != "midtier" {
				t.Errorf("%s[%d].Role=%q", name, i, st.Role)
			}
			if st.Workers <= 0 {
				t.Errorf("%s[%d].Workers=%d", name, i, st.Workers)
			}
		}
	}
}
