package topo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The scenario engine: timed degradations applied to a live deployment.
// Service events add simulated service time or a deterministic error
// fraction to every instance of a synthetic service; edge events inject
// caller-side latency on one named edge.  All knobs are atomics the data
// path reads per request, so applying and reverting an event is a handful
// of stores — no locks near the hot path, no reconfiguration downtime.

// degrade is one synthetic service's live degradation state, shared by all
// of its instances.
type degrade struct {
	slowNs atomic.Int64
	errPpm atomic.Int64
	seq    atomic.Uint64
}

// extra is the added service time currently in force.
func (d *degrade) extra() time.Duration {
	if d == nil {
		return 0
	}
	return time.Duration(d.slowNs.Load())
}

// fail reports whether this request should fail under the current injected
// error rate.  The decision hashes a per-service sequence number, so the
// failure pattern is aperiodic but the realized rate is exact in
// expectation and reproducible in distribution.
func (d *degrade) fail() bool {
	if d == nil {
		return false
	}
	ppm := d.errPpm.Load()
	if ppm <= 0 {
		return false
	}
	return splitmix64(d.seq.Add(1))%1_000_000 < uint64(ppm)
}

// edgeDelay is one "service/edge" pair's live injected latency.
type edgeDelay struct {
	ns atomic.Int64
}

func (e *edgeDelay) current() time.Duration {
	if e == nil {
		return 0
	}
	return time.Duration(e.ns.Load())
}

// EventLogEntry records one scenario transition for the runner's report.
type EventLogEntry struct {
	// Offset is when the transition fired, relative to scenario start.
	Offset time.Duration
	// What describes the transition ("apply" or "revert" plus the event).
	What string
}

// Scenario is a running scenario script over a deployment.
type Scenario struct {
	dep    *Deployment
	timers []*time.Timer
	wg     sync.WaitGroup

	mu  sync.Mutex
	log []EventLogEntry
}

// describeEvent renders an event for the log.
func describeEvent(e EventSpec) string {
	var parts []string
	if e.Target != "" {
		if e.Slow > 0 {
			parts = append(parts, fmt.Sprintf("slow %s by %v", e.Target, e.Slow))
		}
		if e.ErrorRate > 0 {
			parts = append(parts, fmt.Sprintf("fail %.1f%% of %s", e.ErrorRate*100, e.Target))
		}
	}
	if e.Edge != "" {
		parts = append(parts, fmt.Sprintf("delay %s by %v", e.Edge, e.Delay))
	}
	return strings.Join(parts, ", ")
}

// StartScenario arms the spec's events against the deployment, returning
// immediately; each event applies at its offset and reverts after its
// duration (events with For == 0 never revert).  Wait blocks until every
// transition has fired.
func (d *Deployment) StartScenario(events []EventSpec) *Scenario {
	sc := &Scenario{dep: d}
	start := time.Now()
	for _, e := range events {
		e := e
		sc.arm(e.At, "apply: "+describeEvent(e), start, func() { d.applyEvent(e, +1) })
		if e.For > 0 {
			sc.arm(e.At+e.For, "revert: "+describeEvent(e), start, func() { d.applyEvent(e, -1) })
		}
	}
	return sc
}

func (sc *Scenario) arm(at time.Duration, what string, start time.Time, fire func()) {
	sc.wg.Add(1)
	t := time.AfterFunc(at, func() {
		defer sc.wg.Done()
		fire()
		sc.mu.Lock()
		sc.log = append(sc.log, EventLogEntry{Offset: time.Since(start), What: what})
		sc.mu.Unlock()
	})
	sc.timers = append(sc.timers, t)
}

// Wait blocks until every armed transition has fired.
func (sc *Scenario) Wait() { sc.wg.Wait() }

// Stop cancels transitions that have not fired yet (already-applied events
// stay applied; Wait still returns).
func (sc *Scenario) Stop() {
	for _, t := range sc.timers {
		if t.Stop() {
			sc.wg.Done()
		}
	}
}

// Log returns the fired transitions in time order.
func (sc *Scenario) Log() []EventLogEntry {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]EventLogEntry, len(sc.log))
	copy(out, sc.log)
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// applyEvent adds (sign=+1) or removes (sign=-1) one event's deltas.
func (d *Deployment) applyEvent(e EventSpec, sign int64) {
	if e.Target != "" {
		if svc := d.services[e.Target]; svc != nil && svc.deg != nil {
			if e.Slow > 0 {
				svc.deg.slowNs.Add(sign * int64(e.Slow))
			}
			if e.ErrorRate > 0 {
				svc.deg.errPpm.Add(sign * int64(e.ErrorRate*1_000_000))
			}
		}
	}
	if e.Edge != "" && e.Delay > 0 {
		if inj := d.injections[e.Edge]; inj != nil {
			inj.ns.Add(sign * int64(e.Delay))
		}
	}
}
