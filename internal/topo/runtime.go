package topo

import (
	"fmt"

	"musuite/internal/core"
	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// BuildOptions instruments a deployment.
type BuildOptions struct {
	// Spans, when set, wires distributed tracing through every tier: each
	// mid-tier records server and leaf-attempt spans, each leaf its server
	// spans, and the load client roots the tree — one connected trace no
	// matter how deep the spec's DAG is.
	Spans *trace.Recorder
	// SpanSample traces one in every SpanSample front-end requests when
	// Spans is set (values < 1 trace every request).
	SpanSample int
	// Probe receives telemetry from every tier; nil disables it.
	Probe *telemetry.Probe
}

// Service is one spec service's live instances.
type Service struct {
	// Spec is the service's definition.
	Spec *ServiceSpec
	// Groups lists the replica addresses serving each shard — what
	// upstream edges dial.
	Groups [][]string

	mids   []*core.MidTier
	leaves []*core.Leaf
	deg    *degrade
	issue  *RegisteredService
	closer []func()
}

// Stats snapshots every mid-tier instance of the service (synthetic
// mid-tiers and registered kinds; empty for leaf kinds).
func (s *Service) Stats() []core.TierStats {
	out := make([]core.TierStats, 0, len(s.mids))
	for _, m := range s.mids {
		out = append(out, m.Stats())
	}
	return out
}

// MidTiers exposes the service's mid-tier instances (introspection/tests).
func (s *Service) MidTiers() []*core.MidTier { return s.mids }

// Deployment is a running topology: every service built in dependency
// order and wired together over the core framework's named edges.
type Deployment struct {
	// Spec is the validated topology this deployment runs.
	Spec *Spec

	services   map[string]*Service
	injections map[string]*edgeDelay
	order      []string
	opts       BuildOptions
}

// Build instantiates the spec: services build in reverse-topological
// order (downstreams first, so every edge has addresses to dial), each
// synthetic mid-tier instance connects one named core edge per spec edge,
// and leaf tiers shard exactly like handwritten services do.
func Build(spec *Spec, opts BuildOptions) (*Deployment, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{
		Spec:       spec,
		services:   map[string]*Service{},
		injections: map[string]*edgeDelay{},
		opts:       opts,
	}
	for _, name := range spec.ServiceNames() {
		svc := spec.Services[name]
		for _, en := range sortedEdgeNames(svc.Edges) {
			d.injections[name+"/"+en] = &edgeDelay{}
		}
	}
	// Reverse-topological build via DFS (the spec is validated acyclic).
	var build func(name string) error
	build = func(name string) error {
		if _, done := d.services[name]; done {
			return nil
		}
		svc := spec.Services[name]
		for _, en := range sortedEdgeNames(svc.Edges) {
			if err := build(svc.Edges[en].To); err != nil {
				return err
			}
		}
		s, err := d.buildService(svc)
		if err != nil {
			return err
		}
		d.services[name] = s
		d.order = append(d.order, name)
		return nil
	}
	for _, name := range spec.ServiceNames() {
		if err := build(name); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

func (d *Deployment) buildService(svc *ServiceSpec) (*Service, error) {
	switch {
	case isLeafKind(svc.Kind):
		return d.buildLeafService(svc)
	case svc.Kind == KindSynthetic:
		return d.buildSyntheticMid(svc)
	default:
		reg := registry[svc.Kind]
		built, err := reg.build(d.Spec, svc, d.opts)
		if err != nil {
			return nil, fmt.Errorf("topo: building %s: %w", svc.Name, err)
		}
		return &Service{Spec: svc, Groups: built.Groups, issue: built, closer: built.Closers}, nil
	}
}

// buildLeafService starts Shards×Replicas synthetic leaf instances.
func (d *Deployment) buildLeafService(svc *ServiceSpec) (*Service, error) {
	s := &Service{Spec: svc, deg: &degrade{}}
	opts := &core.LeafOptions{
		Workers: svc.Workers,
		Probe:   d.opts.Probe,
		Spans:   d.opts.Spans,
	}
	for shard := 0; shard < svc.Shards; shard++ {
		var group []string
		for r := 0; r < svc.Replicas; r++ {
			leaf, err := newSyntheticLeaf(svc, s.deg, core.EnsureLeafKernel(opts))
			if err != nil {
				s.close()
				return nil, err
			}
			addr, err := leaf.Start("127.0.0.1:0")
			if err != nil {
				s.close()
				return nil, fmt.Errorf("topo: starting %s leaf: %w", svc.Name, err)
			}
			s.leaves = append(s.leaves, leaf)
			s.closer = append(s.closer, leaf.Close)
			group = append(group, addr)
		}
		s.Groups = append(s.Groups, group)
	}
	return s, nil
}

// buildSyntheticMid starts Shards×Replicas mid-tier instances running the
// service's compiled op program, each with one connected core edge per
// spec edge.
func (d *Deployment) buildSyntheticMid(svc *ServiceSpec) (*Service, error) {
	s := &Service{Spec: svc, deg: &degrade{}}
	delays := map[string]*edgeDelay{}
	for _, en := range sortedEdgeNames(svc.Edges) {
		delays[en] = d.injections[svc.Name+"/"+en]
	}
	node := newSvcNode(d.Spec, svc, s.deg, delays)
	for shard := 0; shard < svc.Shards; shard++ {
		var group []string
		for r := 0; r < svc.Replicas; r++ {
			opts := &core.Options{
				Workers: svc.Workers,
				Probe:   d.opts.Probe,
				Spans:   d.opts.Spans,
			}
			if svc.MaxInflight > 0 {
				opts.Admit = core.AdmitPolicy{MaxInflight: svc.MaxInflight}
			}
			mt := core.NewMidTier(node.handler, opts)
			for _, en := range sortedEdgeNames(svc.Edges) {
				e := svc.Edges[en]
				target := d.services[e.To]
				if err := mt.ConnectEdge(en, target.Groups, edgePolicy(e)); err != nil {
					mt.Close()
					s.close()
					return nil, fmt.Errorf("topo: wiring %s.%s: %w", svc.Name, en, err)
				}
			}
			addr, err := mt.Start("127.0.0.1:0")
			if err != nil {
				mt.Close()
				s.close()
				return nil, fmt.Errorf("topo: starting %s: %w", svc.Name, err)
			}
			s.mids = append(s.mids, mt)
			s.closer = append(s.closer, mt.Close)
			group = append(group, addr)
		}
		s.Groups = append(s.Groups, group)
	}
	return s, nil
}

// edgePolicy maps a spec edge to the core framework's per-edge policy.
func edgePolicy(e *EdgeSpec) core.EdgePolicy {
	return core.EdgePolicy{
		Timeout: e.Timeout,
		Tail: core.TailPolicy{
			HedgePercentile: e.HedgePct,
			HedgeDelay:      e.HedgeDelay,
			LeafRetries:     e.Retries,
		},
		Batch: core.BatchPolicy{
			MaxBatch: e.MaxBatch,
			Delay:    e.BatchDelay,
		},
	}
}

// Service looks up a built service by name (nil if absent).
func (d *Deployment) Service(name string) *Service { return d.services[name] }

// Entry is the spec's entry service.
func (d *Deployment) Entry() *Service { return d.services[d.Spec.Entry] }

// EntryAddrs flattens the entry service's shard groups into the address
// list a front-end client dials.
func (d *Deployment) EntryAddrs() []string {
	var addrs []string
	for _, g := range d.Entry().Groups {
		addrs = append(addrs, g...)
	}
	return addrs
}

// Close tears the deployment down, upstreams first so no tier serves
// requests whose downstreams are already gone.
func (d *Deployment) Close() {
	for i := len(d.order) - 1; i >= 0; i-- {
		d.services[d.order[i]].close()
	}
	d.order = nil
}

func (s *Service) close() {
	for i := len(s.closer) - 1; i >= 0; i-- {
		s.closer[i]()
	}
	s.closer = nil
}
