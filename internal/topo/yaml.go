// Package topo is the declarative topology runtime: it parses a YAML
// topology spec describing an arbitrary DAG of services — synthetic
// compute/cache/store tiers and the four registered μSuite benchmarks —
// and instantiates it over the core mid-tier/leaf framework, so every
// piece of machinery the framework grew (per-edge tail tolerance and
// batching, admission control, RCU shard maps, distributed tracing)
// composes over spec-defined topologies instead of hardwired ones.
package topo

import (
	"fmt"
	"strings"
)

// The repo carries zero third-party dependencies, so the spec format is a
// strict, hand-parsed YAML subset: block mappings and sequences indented
// with spaces, "- " sequence items (inline mappings allowed on the dash
// line), flow collections ({k: v}, [a, b]), single- and double-quoted
// scalars, and # comments.  Everything decodes to map[string]any /
// []any / string; typed conversion happens in the spec layer.  Duplicate
// keys, tab indentation, and structural ambiguity are errors — a config
// language that guesses is worse than one that refuses.

// DecodeYAML parses src into nested map[string]any / []any / string
// values.  An empty document decodes to nil.
func DecodeYAML(src []byte) (any, error) {
	p := &yamlParser{}
	if err := p.split(string(src)); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, err := p.parseNode(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml: line %d: unexpected content %q after document", l.num, l.text)
	}
	return v, nil
}

// yamlLine is one significant source line: indentation width, content with
// the comment stripped, and the 1-based source line number for errors.
type yamlLine struct {
	indent int
	text   string
	num    int
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// split preprocesses the source into significant lines, rejecting tab
// indentation and stripping comments outside quotes.
func (p *yamlParser) split(src string) error {
	for num, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return fmt.Errorf("yaml: line %d: tab indentation is not allowed", num+1)
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if indent == 0 && (text == "---" || text == "...") {
			continue
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: text, num: num + 1})
	}
	return nil
}

// stripComment removes a trailing "# ..." comment that is not inside a
// quoted scalar.  A # must start the line or follow whitespace to open a
// comment, matching YAML's rule.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

func (p *yamlParser) more() bool { return p.pos < len(p.lines) }

// parseNode parses one block value whose lines are indented at least
// minIndent; the first such line fixes the block's own indentation.
func (p *yamlParser) parseNode(minIndent int) (any, error) {
	if !p.more() || p.lines[p.pos].indent < minIndent {
		return nil, nil
	}
	line := p.lines[p.pos]
	if line.text == "-" || strings.HasPrefix(line.text, "- ") {
		return p.parseSequence(line.indent)
	}
	if _, _, ok := splitKeyValue(line.text); ok {
		return p.parseMapping(line.indent)
	}
	// A bare scalar document/value: exactly one line.
	p.pos++
	v, err := parseFlowValue(line.text, line.num)
	if err != nil {
		return nil, err
	}
	if p.more() && p.lines[p.pos].indent >= minIndent {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml: line %d: unexpected continuation after scalar", l.num)
	}
	return v, nil
}

// parseMapping parses consecutive "key: value" lines at exactly indent.
func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for p.more() {
		line := p.lines[p.pos]
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation", line.num)
		}
		if line.text == "-" || strings.HasPrefix(line.text, "- ") {
			return nil, fmt.Errorf("yaml: line %d: sequence item inside mapping", line.num)
		}
		rawKey, rest, ok := splitKeyValue(line.text)
		if !ok {
			return nil, fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", line.num, line.text)
		}
		key, err := unquoteScalar(rawKey, line.num)
		if err != nil {
			return nil, err
		}
		if key == "" {
			return nil, fmt.Errorf("yaml: line %d: empty mapping key", line.num)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", line.num, key)
		}
		p.pos++
		var v any
		if rest == "" {
			if p.more() && p.lines[p.pos].indent > indent {
				v, err = p.parseNode(indent + 1)
				if err != nil {
					return nil, err
				}
			}
			// Else: an explicitly empty value, decoded as nil.
		} else {
			v, err = parseFlowValue(rest, line.num)
			if err != nil {
				return nil, err
			}
		}
		m[key] = v
	}
	return m, nil
}

// parseSequence parses consecutive "- item" lines at exactly indent.  An
// inline mapping may start on the dash line; its continuation lines must be
// indented two columns past the dash (the "- " width), the conventional
// YAML layout.
func (p *yamlParser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for p.more() {
		line := p.lines[p.pos]
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation", line.num)
		}
		if line.text != "-" && !strings.HasPrefix(line.text, "- ") {
			return nil, fmt.Errorf("yaml: line %d: expected sequence item", line.num)
		}
		item := strings.TrimPrefix(strings.TrimPrefix(line.text, "-"), " ")
		if item == "" {
			// A nested block value on the following, deeper-indented lines.
			p.pos++
			v, err := p.parseNode(indent + 1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if _, _, ok := splitKeyValue(item); ok && item[0] != '{' && item[0] != '[' {
			// An inline mapping opening on the dash line: rewrite this line
			// as its first entry at the item indentation and parse the
			// mapping block from here.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: item, num: line.num}
			v, err := p.parseMapping(indent + 2)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.pos++
		v, err := parseFlowValue(item, line.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// splitKeyValue splits "key: value" (or "key:") at the first unquoted
// colon that ends the key.  ok is false when the text is a plain scalar.
func splitKeyValue(s string) (key, value string, ok bool) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':':
			if i+1 == len(s) {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// parseFlowValue parses an inline value: a flow mapping, flow sequence, or
// scalar.
func parseFlowValue(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s[0] == '{' || s[0] == '[' {
		f := &flowParser{src: s, num: num}
		v, err := f.value()
		if err != nil {
			return nil, err
		}
		f.skipSpace()
		if f.pos != len(f.src) {
			return nil, fmt.Errorf("yaml: line %d: trailing characters after flow value", num)
		}
		return v, nil
	}
	return unquoteScalar(s, num)
}

// unquoteScalar strips matching quotes from a scalar; plain scalars pass
// through verbatim (typed conversion is the spec layer's job).
func unquoteScalar(s string, num int) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[len(s)-1] != s[0] {
			return "", fmt.Errorf("yaml: line %d: unterminated quoted scalar %q", num, s)
		}
		inner := s[1 : len(s)-1]
		if strings.IndexByte(inner, s[0]) >= 0 {
			return "", fmt.Errorf("yaml: line %d: stray quote inside quoted scalar %q", num, s)
		}
		return inner, nil
	}
	if len(s) == 1 && (s[0] == '\'' || s[0] == '"') {
		return "", fmt.Errorf("yaml: line %d: unterminated quoted scalar %q", num, s)
	}
	return s, nil
}

// flowParser parses inline {k: v, ...} and [a, b, ...] collections.
type flowParser struct {
	src string
	num int
	pos int
}

func (f *flowParser) skipSpace() {
	for f.pos < len(f.src) && f.src[f.pos] == ' ' {
		f.pos++
	}
}

func (f *flowParser) value() (any, error) {
	f.skipSpace()
	if f.pos >= len(f.src) {
		return nil, fmt.Errorf("yaml: line %d: unexpected end of flow value", f.num)
	}
	switch f.src[f.pos] {
	case '{':
		return f.mapping()
	case '[':
		return f.sequence()
	default:
		return f.scalar()
	}
}

func (f *flowParser) mapping() (any, error) {
	f.pos++ // '{'
	m := make(map[string]any)
	f.skipSpace()
	if f.pos < len(f.src) && f.src[f.pos] == '}' {
		f.pos++
		return m, nil
	}
	for {
		f.skipSpace()
		rawKey, err := f.scalarUntil(":,}]")
		if err != nil {
			return nil, err
		}
		if f.pos >= len(f.src) || f.src[f.pos] != ':' {
			return nil, fmt.Errorf("yaml: line %d: expected ':' in flow mapping", f.num)
		}
		f.pos++ // ':'
		key, err := unquoteScalar(rawKey, f.num)
		if err != nil {
			return nil, err
		}
		if key == "" {
			return nil, fmt.Errorf("yaml: line %d: empty flow mapping key", f.num)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", f.num, key)
		}
		v, err := f.value()
		if err != nil {
			return nil, err
		}
		m[key] = v
		f.skipSpace()
		if f.pos >= len(f.src) {
			return nil, fmt.Errorf("yaml: line %d: unterminated flow mapping", f.num)
		}
		switch f.src[f.pos] {
		case ',':
			f.pos++
		case '}':
			f.pos++
			return m, nil
		default:
			return nil, fmt.Errorf("yaml: line %d: expected ',' or '}' in flow mapping", f.num)
		}
	}
}

func (f *flowParser) sequence() (any, error) {
	f.pos++ // '['
	seq := []any{}
	f.skipSpace()
	if f.pos < len(f.src) && f.src[f.pos] == ']' {
		f.pos++
		return seq, nil
	}
	for {
		v, err := f.value()
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
		f.skipSpace()
		if f.pos >= len(f.src) {
			return nil, fmt.Errorf("yaml: line %d: unterminated flow sequence", f.num)
		}
		switch f.src[f.pos] {
		case ',':
			f.pos++
		case ']':
			f.pos++
			return seq, nil
		default:
			return nil, fmt.Errorf("yaml: line %d: expected ',' or ']' in flow sequence", f.num)
		}
	}
}

// scalar parses a flow scalar terminated by a flow delimiter.
func (f *flowParser) scalar() (any, error) {
	raw, err := f.scalarUntil(",}]")
	if err != nil {
		return nil, err
	}
	return unquoteScalar(raw, f.num)
}

// scalarUntil consumes characters up to (not including) the first unquoted
// byte in stops, returning the raw text with quotes intact.
func (f *flowParser) scalarUntil(stops string) (string, error) {
	start := f.pos
	if f.pos < len(f.src) && (f.src[f.pos] == '\'' || f.src[f.pos] == '"') {
		quote := f.src[f.pos]
		f.pos++
		for f.pos < len(f.src) && f.src[f.pos] != quote {
			f.pos++
		}
		if f.pos >= len(f.src) {
			return "", fmt.Errorf("yaml: line %d: unterminated quoted scalar", f.num)
		}
		f.pos++ // closing quote
		return f.src[start:f.pos], nil
	}
	for f.pos < len(f.src) && strings.IndexByte(stops, f.src[f.pos]) < 0 {
		f.pos++
	}
	s := strings.TrimSpace(f.src[start:f.pos])
	if s == "" {
		return "", fmt.Errorf("yaml: line %d: empty flow scalar", f.num)
	}
	return s, nil
}
