package topo

import (
	"reflect"
	"strings"
	"testing"
)

func TestDecodeYAMLBlockStructure(t *testing.T) {
	src := `
# a comment
topology: demo
entry: "fe"   # trailing comment
services:
  fe:
    kind: synthetic
    shards: 2
    edges:
      down: {to: leaf, timeout: 100ms}
    ops:
      q:
        calls:
          - {edge: down, method: do}
          - edge: down
            method: get
            optional: true
  leaf:
    kind: compute
list: [a, b, 'c d']
`
	got, err := DecodeYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"topology": "demo",
		"entry":    "fe",
		"services": map[string]any{
			"fe": map[string]any{
				"kind":   "synthetic",
				"shards": "2",
				"edges": map[string]any{
					"down": map[string]any{"to": "leaf", "timeout": "100ms"},
				},
				"ops": map[string]any{
					"q": map[string]any{
						"calls": []any{
							map[string]any{"edge": "down", "method": "do"},
							map[string]any{"edge": "down", "method": "get", "optional": "true"},
						},
					},
				},
			},
			"leaf": map[string]any{"kind": "compute"},
		},
		"list": []any{"a", "b", "c d"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded\n%#v\nwant\n%#v", got, want)
	}
}

func TestDecodeYAMLSequences(t *testing.T) {
	src := `
scenario:
  - {at: 1s, target: db, slow: 2ms}
  - at: 2s
    edge: fe/down
    delay: 5ms
empty: []
emptymap: {}
`
	got, err := DecodeYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	sc := m["scenario"].([]any)
	if len(sc) != 2 {
		t.Fatalf("scenario items=%d want 2", len(sc))
	}
	if sc[1].(map[string]any)["delay"] != "5ms" {
		t.Fatalf("second item=%v", sc[1])
	}
	if len(m["empty"].([]any)) != 0 || len(m["emptymap"].(map[string]any)) != 0 {
		t.Fatalf("empty collections mis-decoded: %v", m)
	}
}

func TestDecodeYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab", "a:\n\tb: 1", "tab indentation"},
		{"dup-key", "a: 1\na: 2", "duplicate key"},
		{"dup-flow-key", "m: {a: 1, a: 2}", "duplicate key"},
		{"unterminated-quote", `a: "oops`, "unterminated"},
		{"unterminated-flow", "a: {b: 1", "unterminated flow mapping"},
		{"bad-indent", "a:\n    b: 1\n  c: 2", "unexpected indentation"},
		{"seq-in-map", "a: 1\n- b", "sequence item inside mapping"},
		{"trailing-flow", "a: [1, 2] extra", "trailing characters"},
		{"scalar-continuation", "a\nb", "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("decoded %q without error", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeYAMLEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# only comments\n", "---\n"} {
		v, err := DecodeYAML([]byte(src))
		if err != nil || v != nil {
			t.Fatalf("empty doc %q -> %v, %v", src, v, err)
		}
	}
}

// FuzzYAMLDecode asserts the decoder is total: any input either decodes or
// returns an error — never a panic or a hang.  Valid inputs re-validate
// through the spec layer without crashing either.
func FuzzYAMLDecode(f *testing.F) {
	seeds := []string{
		"a: 1",
		"a:\n  b: c\n  d: [1, 2]",
		"s:\n  - {x: 1}\n  - y: 2\n    z: 3",
		"entry: fe\nservices:\n  fe:\n    kind: compute",
		"q: \"quoted # not comment\"",
		"m: {a: {b: [c, d]}}",
		"- 1\n- 2",
		"---\nk: v",
		"a: 'x'\nb: \"y\"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		v, err := DecodeYAML(src)
		if err != nil {
			return
		}
		// A decoded tree must be spec-decodable or cleanly rejected.
		if spec, err := decodeSpec(v); err == nil && spec != nil {
			_ = spec.Validate()
		}
	})
}
