// Package cmdutil holds the flag groups the four service binaries share, so
// hdsearch, router, setalgebra, and recommend expose one consistent
// operational surface: -admit-* arms the mid-tier's adaptive admission
// controller, -autoscale-* runs the closed scaling loop over a warm-spares
// leaf pool.
package cmdutil

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"musuite/internal/autoscale"
	"musuite/internal/core"
	"musuite/internal/rpc"
)

// AdmitFlags is the -admit-* flag group.
type AdmitFlags struct {
	limit    *int
	deadline *time.Duration
	tol      *float64
	priority *string
}

// RegisterAdmitFlags registers the admission flag group; call before
// flag.Parse.
func RegisterAdmitFlags() *AdmitFlags {
	return &AdmitFlags{
		limit: flag.Int("admit-limit", 0,
			"midtier: adaptive admission concurrency ceiling (0 = admission off)"),
		deadline: flag.Duration("admit-deadline", 0,
			"midtier: per-request latency budget for deadline-aware shedding (0 = off)"),
		tol: flag.Float64("admit-tolerance", 0,
			"midtier: AIMD latency tolerance over the EWMA floor (0 = default 2.0)"),
		priority: flag.String("admit-priority", "",
			"midtier: comma-separated RPC methods classified high-priority (shed last under overload)"),
	}
}

// Policy builds the AdmitPolicy the flags describe.
func (f *AdmitFlags) Policy() core.AdmitPolicy {
	return core.AdmitPolicy{
		MaxInflight: *f.limit,
		Deadline:    *f.deadline,
		Tolerance:   *f.tol,
	}
}

// Classifier builds the per-request priority classifier for -admit-priority,
// nil when the flag is empty.
func (f *AdmitFlags) Classifier() func(*rpc.Request) core.Priority {
	high := map[string]bool{}
	for _, m := range strings.Split(*f.priority, ",") {
		if m = strings.TrimSpace(m); m != "" {
			high[m] = true
		}
	}
	if len(high) == 0 {
		return nil
	}
	return func(req *rpc.Request) core.Priority {
		if high[req.Method] {
			return core.PriorityHigh
		}
		return core.PriorityNormal
	}
}

// AutoscaleFlags is the -autoscale-* flag group.
type AutoscaleFlags struct {
	spares     *string
	interval   *time.Duration
	queueDepth *int
	p99        *time.Duration
	drain      *time.Duration
}

// RegisterAutoscaleFlags registers the autoscaler flag group; call before
// flag.Parse.
func RegisterAutoscaleFlags() *AutoscaleFlags {
	return &AutoscaleFlags{
		spares: flag.String("autoscale-spares", "",
			"midtier: warm spare leaf groups the autoscaler may place in service (';' between groups, ',' between replicas; empty = autoscaler off)"),
		interval: flag.Duration("autoscale-interval", 0,
			"midtier: autoscaler poll period (0 = default 250ms)"),
		queueDepth: flag.Int("autoscale-queue-depth", 0,
			"midtier: dispatch-queue depth marking a poll hot (0 = default 4)"),
		p99: flag.Duration("autoscale-p99", 0,
			"midtier: tracked p99 service time marking a poll hot (0 = ignore latency signal)"),
		drain: flag.Duration("autoscale-drain", 0,
			"midtier: scale-down drain deadline (0 = default 5s)"),
	}
}

// StartAutoscaler arms the closed loop over the mid-tier's own topology:
// scale-up dials the next spare group, scale-down drains the newest
// autoscaler-added group.  Returns nil when -autoscale-spares is empty.
func (f *AutoscaleFlags) StartAutoscaler(mt *core.MidTier) (*autoscale.Autoscaler, error) {
	groups := autoscale.ParseSpareGroups(*f.spares)
	if len(groups) == 0 {
		return nil, nil
	}
	drain := *f.drain
	if drain <= 0 {
		drain = 5 * time.Second
	}
	base := mt.NumLeaves()
	target := autoscale.NewSpareTarget(
		func() (core.TierStats, error) { return mt.Stats(), nil },
		mt.AddLeafGroup,
		func(shard int) error { return mt.DrainLeafGroup(shard, drain) },
		groups,
	)
	a := autoscale.New(target, autoscale.Config{
		Interval:     *f.interval,
		UpQueueDepth: *f.queueDepth,
		UpP99:        *f.p99,
		MinLeaves:    base,
		MaxLeaves:    base + len(groups),
	})
	a.Start()
	fmt.Printf("autoscaler armed: %d spare leaf groups, %d-%d leaves\n",
		len(groups), base, base+len(groups))
	return a, nil
}
