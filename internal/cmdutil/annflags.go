package cmdutil

import (
	"flag"

	"musuite/internal/ann"
	"musuite/internal/services/hdsearch"
)

// ANNFlags is the candidate-index flag group hdsearch and musuite-bench
// share: the kind selector plus the IVF (-nlist/-nprobe/-rerank) and HNSW
// (-m/-ef-construction/-ef-search) tuning knobs.
type ANNFlags struct {
	kind   *string
	nlist  *int
	nprobe *int
	rerank *int
	m      *int
	efCon  *int
	efSrch *int
}

// RegisterANNFlags registers the index flag group; call before flag.Parse.
func RegisterANNFlags() *ANNFlags {
	return &ANNFlags{
		kind: flag.String("index", "lsh",
			"candidate index: lsh | kdtree | kmeans | ivf | ivfsq | ivfpq | hnsw (leaf-resident kinds build per-shard indexes)"),
		nlist: flag.Int("nlist", 0,
			"ivf*: coarse clusters per leaf shard (0 = √shard-size)"),
		nprobe: flag.Int("nprobe", 0,
			"ivf*: clusters probed per query (0 = leaf default)"),
		rerank: flag.Int("rerank", 0,
			"ivfsq/ivfpq: exact re-rank depth over compressed candidates (0 = leaf default)"),
		m: flag.Int("m", 0,
			"hnsw: per-node degree bound on upper layers, base layer allows 2m (0 = default 16)"),
		efCon: flag.Int("ef-construction", 0,
			"hnsw: build-time beam width (0 = default 200)"),
		efSrch: flag.Int("ef-search", 0,
			"hnsw: query-time beam width (0 = leaf default 64)"),
	}
}

// Kind reports the selected index kind.
func (f *ANNFlags) Kind() hdsearch.IndexKind { return hdsearch.IndexKind(*f.kind) }

// Config assembles the ann build config the flags describe.  The family
// selector and quantization come from the kind via LeafANNConfig at the
// build site; this carries only the tuning knobs.
func (f *ANNFlags) Config() ann.Config {
	return ann.Config{
		NList:          *f.nlist,
		NProbe:         *f.nprobe,
		Rerank:         *f.rerank,
		M:              *f.m,
		EFConstruction: *f.efCon,
		EFSearch:       *f.efSrch,
	}
}

// RouterKnob reports the mid-tier routing stub's initial breadth knob for
// the selected kind: -ef-search for hnsw, -nprobe for the IVF kinds.
func (f *ANNFlags) RouterKnob() int {
	if f.Kind() == hdsearch.IndexHNSW {
		return *f.efSrch
	}
	return *f.nprobe
}

// Rerank reports the -rerank flag (the routing stub's second knob).
func (f *ANNFlags) Rerank() int { return *f.rerank }
