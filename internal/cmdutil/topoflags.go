package cmdutil

import (
	"flag"
	"time"

	"musuite/internal/topo"
)

// TopoFlags is the -topo/-scenario flag group shared by cmd/topo and
// musuite-bench: one spec path plus run-shape overrides, so a topology
// behaves identically no matter which binary drives it.
type TopoFlags struct {
	path     *string
	scenario *bool
	duration *time.Duration
	qps      *float64
	pattern  *string
	seed     *int64
}

// RegisterTopoFlags registers the topology flag group; call before
// flag.Parse.
func RegisterTopoFlags() *TopoFlags {
	return &TopoFlags{
		path: flag.String("topo", "",
			"topology spec (YAML) to deploy and drive"),
		scenario: flag.Bool("scenario", true,
			"arm the spec's scenario events (false = run the topology undisturbed)"),
		duration: flag.Duration("topo-duration", 0,
			"override the spec's offered-load window (0 = spec value)"),
		qps: flag.Float64("topo-qps", 0,
			"override the spec's base offered load (0 = spec value)"),
		pattern: flag.String("topo-pattern", "",
			"override the spec's arrival pattern: steady | diurnal | flashcrowd | burst"),
		seed: flag.Int64("topo-seed", 0,
			"override the spec's deterministic seed (0 = spec value)"),
	}
}

// Path is the -topo spec path ("" when unset).
func (f *TopoFlags) Path() string { return *f.path }

// LoadSpec parses and validates the -topo spec, stripping its scenario
// section when -scenario=false.
func (f *TopoFlags) LoadSpec() (*topo.Spec, error) {
	spec, err := topo.LoadSpecFile(*f.path)
	if err != nil {
		return nil, err
	}
	if !*f.scenario {
		spec.Scenario = nil
	}
	return spec, nil
}

// RunOptions builds the run-shape overrides the flags describe.
func (f *TopoFlags) RunOptions() topo.RunOptions {
	return topo.RunOptions{
		QPS:          *f.qps,
		Duration:     *f.duration,
		Pattern:      *f.pattern,
		Seed:         *f.seed,
		DrainTimeout: 10 * time.Second,
	}
}
