//go:build amd64

package kernel

// The tuned dot product dispatches to a hand-written AVX2+FMA kernel when
// the CPU supports it (detected once via CPUID below).  The kernel computes
// the same Σ aᵢ·bᵢ reduction as dotGeneric with a different association
// order, so results may differ from the pure-Go path in the last ulps —
// which is why equivalence against the scalar reference is specified with a
// tolerance, while serial/parallel/tiled engine paths stay bit-identical
// (they all call the same dot8).

// dotSIMD computes the dot product of a[0:n]·b[0:n].  n must be a positive
// multiple of 8; the Go wrapper handles tails.  Implemented in dot_amd64.s.
//
//go:noescape
func dotSIMD(a, b *float32, n int) float32

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

func init() {
	// AVX2 FMA needs: CPUID.1:ECX FMA(12), OSXSAVE(27), AVX(28); the OS
	// saving XMM+YMM state (XCR0 bits 1–2); and CPUID.(7,0):EBX AVX2(5).
	_, _, ecx1, _ := cpuidex(1, 0)
	const fmaBit, osxsaveBit, avxBit = 1 << 12, 1 << 27, 1 << 28
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return
	}
	if xcr0, _ := xgetbv0(); xcr0&6 != 6 {
		return
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	useSIMD = ebx7&avx2Bit != 0
}
