// Package kernel is the leaf compute engine: flat structure-of-arrays
// vector stores, norm-trick dot-product distance kernels with 8-way unrolled
// inner loops, a multi-query × point-block tile kernel for batched requests,
// and an intra-request index-stealing parallel scan with per-worker bounded
// top-k heaps.  It is the software analog of the paper's SIMD-accelerated
// HDSearch distance kernel: once RPC overheads are tamed (PRs 1–3), leaf
// compute dominates service time, and this package makes that compute cache-
// and core-shaped.
//
// Every engine path produces results bit-identical to its own serial scan
// (the per-(query, point) arithmetic is shared and the top-k order is total),
// and equal to the package's scalar reference within a documented float
// tolerance (the norm trick reassociates the sum).  The reference is kept
// behind Config.ForceScalar so equivalence stays testable end to end.
package kernel

import (
	"musuite/internal/vec"
)

// Store is a flat structure-of-arrays vector set: all rows live in one
// contiguous []float32 block at a fixed stride, with each row's squared norm
// precomputed.  Compared with []vec.Vector it removes one pointer chase and
// a slice-header load per point, streams linearly through memory, and feeds
// the norm-trick kernel its ‖p‖² term for free.
type Store struct {
	data  []float32
	norms []float32 // norms[i] = ‖row i‖²
	n     int
	dim   int
}

// BuildStore copies vectors into a flat store, validating once that every
// row has the same dimension — the single place dimension checking happens,
// so the kernels themselves can assume rectangular input.
func BuildStore(vectors []vec.Vector) (*Store, error) {
	if len(vectors) == 0 {
		return &Store{}, nil
	}
	dim := len(vectors[0])
	if dim == 0 {
		return nil, vec.ErrDimensionMismatch
	}
	s := &Store{
		data:  make([]float32, len(vectors)*dim),
		norms: make([]float32, len(vectors)),
		n:     len(vectors),
		dim:   dim,
	}
	for i, v := range vectors {
		if len(v) != dim {
			return nil, vec.ErrDimensionMismatch
		}
		copy(s.data[i*dim:], v)
	}
	s.fillNorms()
	return s, nil
}

// FromFlat wraps an existing contiguous row-major block (len(data) must be a
// multiple of dim).  The store takes ownership of data.
func FromFlat(data []float32, dim int) (*Store, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, vec.ErrDimensionMismatch
	}
	s := &Store{data: data, n: len(data) / dim, dim: dim}
	s.norms = make([]float32, s.n)
	s.fillNorms()
	return s, nil
}

// FromFloat64 converts a contiguous row-major float64 block (e.g. a trained
// latent-factor matrix) into a float32 store once, so serving never converts
// per point.
func FromFloat64(data []float64, dim int) (*Store, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, vec.ErrDimensionMismatch
	}
	f := make([]float32, len(data))
	for i, v := range data {
		f[i] = float32(v)
	}
	return FromFlat(f, dim)
}

func (s *Store) fillNorms() {
	for i := 0; i < s.n; i++ {
		row := s.data[i*s.dim : (i+1)*s.dim]
		s.norms[i] = dot8(row, row)
	}
}

// Len reports the number of rows.
func (s *Store) Len() int { return s.n }

// Dim reports the row dimensionality.
func (s *Store) Dim() int { return s.dim }

// Row returns row i as a slice aliasing the store's backing block.  Callers
// must not modify it.
func (s *Store) Row(i int) []float32 {
	return s.data[i*s.dim : (i+1)*s.dim : (i+1)*s.dim]
}

// Norm2 returns ‖row i‖², precomputed at build time.
func (s *Store) Norm2(i int) float32 { return s.norms[i] }

// Bytes reports the store's resident size: the flat row block plus the
// precomputed norms.  The compressed ann stores assert their footprint
// against this number.
func (s *Store) Bytes() int { return 4 * (len(s.data) + len(s.norms)) }
