package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The intra-request parallel scan: one global, lazily started helper pool
// shared by every engine in the process (engines are thin configs, so a
// process with many in-memory leaves — the test clusters — never multiplies
// goroutines), and an index-stealing parallel-for whose caller participates.
// Work is handed out in fixed chunks claimed from a shared atomic cursor, so
// a helper descheduled mid-scan costs one chunk of imbalance, not a static
// half of the range; and there is no per-request goroutine spawn — paper
// Figs. 11–14 charge exactly that clone/futex churn against thread-per-
// request designs.

const (
	// minParallelPoints is the scan size below which recruiting helpers
	// costs more than it saves and the scan stays on the caller.
	minParallelPoints = 4096
	// chunkPoints is the index-stealing claim granularity: large enough to
	// amortize the atomic add, small enough to balance tail chunks.
	chunkPoints = 1024
)

// job is one parallel-for in flight; pooled so steady-state scans allocate
// nothing.
type job struct {
	fn   func(worker, lo, hi int)
	n    int64
	next atomic.Int64
	slot atomic.Int32
	wg   sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

var (
	helpersOnce sync.Once
	helperCh    chan *job
)

// startHelpers launches the global helper pool: NumCPU-1 goroutines (the
// caller is the final participant), parked on an unbuffered channel so a
// failed non-blocking send means "no helper is idle" and the caller simply
// keeps the work.
func startHelpers() {
	helpersOnce.Do(func() {
		helperCh = make(chan *job)
		for i := runtime.NumCPU() - 1; i > 0; i-- {
			go func() {
				for j := range helperCh {
					j.run()
					j.wg.Done()
				}
			}()
		}
	})
}

// run claims a worker slot, then steals chunks until the range is exhausted.
func (j *job) run() {
	w := int(j.slot.Add(1)) - 1
	for {
		lo := j.next.Add(chunkPoints) - chunkPoints
		if lo >= j.n {
			return
		}
		hi := lo + chunkPoints
		if hi > j.n {
			hi = j.n
		}
		j.fn(w, int(lo), int(hi))
	}
}

// ParallelFor exposes the index-stealing parallel-for to engine-adjacent
// packages (the ann compressed-store scans), sharing the process-global
// helper pool.  fn receives a stable worker index in [0, par) — key
// per-worker state (top-k heaps) off it; small ranges and par ≤ 1 run
// inline on the caller.
func ParallelFor(par, n int, fn func(worker, lo, hi int)) { parallelFor(par, n, fn) }

// parallelFor runs fn over [0, n) with up to par participants (the caller
// plus recruited idle helpers).  fn receives a stable worker index in
// [0, par) — callers key per-worker state (top-k heaps) off it.  Small
// ranges and par ≤ 1 run inline.
func parallelFor(par, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if par <= 1 || n < minParallelPoints {
		fn(0, 0, n)
		return
	}
	startHelpers()
	j := jobPool.Get().(*job)
	j.fn = fn
	j.n = int64(n)
	j.next.Store(0)
	j.slot.Store(0)
	for i := 1; i < par; i++ {
		j.wg.Add(1)
		sent := false
		select {
		case helperCh <- j:
			sent = true
		default:
		}
		if !sent {
			j.wg.Done()
			break
		}
	}
	j.run()
	j.wg.Wait()
	j.fn = nil
	jobPool.Put(j)
}
