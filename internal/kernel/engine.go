package kernel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/knn"
	"musuite/internal/telemetry"
	"musuite/internal/vec"
)

// Config tunes an Engine.
type Config struct {
	// Parallelism caps how many cores one request's scan may use
	// (0 = NumCPU; 1 = serial).  The -leaf-parallelism flag lands here.
	Parallelism int
	// ForceScalar switches every scan to the scalar reference kernels
	// (diff-squared distance, no tiling, no parallelism) — the
	// -scalar-kernels flag, kept so equivalence is testable end to end.
	ForceScalar bool
	// Probe receives kernel counters alongside the engine's own; nil
	// disables.
	Probe *telemetry.Probe
}

// Engine executes leaf scans.  It is a thin config plus counters — the
// helper goroutines live in one process-global pool — so every leaf can own
// an engine (making its TierStats counters per-leaf) without goroutine cost.
type Engine struct {
	par    int
	scalar bool
	probe  *telemetry.Probe

	scans  atomic.Uint64
	points atomic.Uint64
	nanos  atomic.Uint64
}

// New builds an engine.
func New(cfg Config) *Engine {
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	return &Engine{par: par, scalar: cfg.ForceScalar, probe: cfg.Probe}
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide default engine (NumCPU parallelism,
// tuned kernels) — the fallback for components constructed without one.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Config{}) })
	return defaultEngine
}

func (e *Engine) orDefault() *Engine {
	if e == nil {
		return Default()
	}
	return e
}

// Parallelism reports the engine's per-scan worker cap, so callers running
// their own ParallelFor loops (the ann compressed-store scans) match the
// engine's configured core budget.
func (e *Engine) Parallelism() int { return e.orDefault().par }

// Stats is the engine's cumulative accounting.
type Stats struct {
	// Scans counts kernel invocations; Points the candidate rows scored;
	// Nanos the wall time inside the kernels.  Points/Nanos is the
	// points-scanned/s throughput TierStats and telemetry surface.
	Scans, Points, Nanos uint64
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{Scans: e.scans.Load(), Points: e.points.Load(), Nanos: e.nanos.Load()}
}

func (e *Engine) account(points int, start time.Time) {
	d := uint64(time.Since(start))
	e.scans.Add(1)
	e.points.Add(uint64(points))
	e.nanos.Add(d)
	if e.probe != nil {
		e.probe.AddKernel(telemetry.KernelScans, 1)
		e.probe.AddKernel(telemetry.KernelPoints, uint64(points))
		e.probe.AddKernel(telemetry.KernelNanos, d)
	}
}

// --- inner kernels ---

// useSIMD is set by per-arch init when the CPU has a vector dot kernel
// (AVX2+FMA on amd64).  All tuned engine paths go through the same dot8, so
// which kernel runs never affects serial/parallel/tile equivalence.
var useSIMD bool

// dot8 is the one inner loop every tuned distance reduces to under the norm
// trick ‖q−p‖² = ‖q‖²+‖p‖²−2·q·p: the vector kernel when the CPU has one,
// else the 8-way unrolled scalar loop.  Short vectors skip the SIMD call —
// the call overhead exceeds the win below ~4 blocks.
func dot8(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // one bounds check; the unrolled body elides the rest
	if useSIMD && n >= 32 {
		n8 := n &^ 7
		s := dotSIMD(&a[0], &b[0], n8)
		for i := n8; i < n; i++ {
			s += a[i] * b[i]
		}
		return s
	}
	return dotGeneric(a, b)
}

// Dot exposes the engine's inner dot product — the vector kernel when the
// CPU has one — to engine-adjacent packages (the ann index builders score
// centroids with it).  Equal-length slices are the caller's contract, as
// with every kernel in this package.
func Dot(a, b []float32) float32 { return dot8(a, b) }

// DistAt exposes the engine's per-(query, point) norm-trick distance for a
// single store row — the subset-distance helper the ann graph traversals
// (HNSW neighbor expansions) evaluate point by point.  qn is ‖q‖², computed
// once per query with Dot(q, q).  The result is bit-identical to what Scan
// and ScanSubset compute for the same pair.
func DistAt(s *Store, q []float32, qn float32, i int) float32 {
	return normDist(q, qn, s.Row(i), s.norms[i])
}

// RowDist is the norm-trick squared distance between two rows of the same
// store — the pairwise term the ann neighbor-selection heuristic scores on
// the SIMD dot kernel with both norms precomputed.
func RowDist(s *Store, i, j int) float32 {
	return normDist(s.Row(i), s.norms[i], s.Row(j), s.norms[j])
}

// DistMany appends the norm-trick distance from q to each listed row.  The
// iterations are independent, which is the point: a graph traversal's
// neighbor rows are scattered, so evaluating a whole adjacency band in one
// tight loop lets the core overlap the cache misses instead of serializing
// them behind per-neighbor bookkeeping.  Each distance is bit-identical to
// DistAt for the same pair.  Out-of-range ids are the caller's bug, as with
// Row.
func DistMany(s *Store, q []float32, qn float32, ids []uint32, dst []float32) []float32 {
	for _, id := range ids {
		dst = append(dst, normDist(q, qn, s.Row(int(id)), s.norms[id]))
	}
	return dst
}

// dotGeneric is the portable 8-way unrolled dot product.
func dotGeneric(a, b []float32) float32 {
	n := len(a)
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// normDist is the per-(query, point) distance every engine path shares —
// serial, parallel, and tiled scans therefore produce bit-identical floats.
// The clamp absorbs the small negative results cancellation can produce for
// near-duplicate points.
func normDist(q []float32, qn float32, row []float32, rowNorm float32) float32 {
	d := qn + rowNorm - 2*dot8(q, row)
	if d < 0 {
		return 0
	}
	return d
}

// --- scratch pooling ---

// scanScratch recycles the per-worker heaps of one scan.  heaps is sized
// par (or par×queries for the tile kernel) and reused across requests.
type scanScratch struct {
	heaps []TopK
}

var scanScratches = sync.Pool{New: func() any { return new(scanScratch) }}

func getScratch(heaps, k int) *scanScratch {
	sc := scanScratches.Get().(*scanScratch)
	if cap(sc.heaps) < heaps {
		sc.heaps = make([]TopK, heaps)
	} else {
		sc.heaps = sc.heaps[:heaps]
	}
	for i := range sc.heaps {
		sc.heaps[i].Reset(k)
	}
	return sc
}

// mergeAppend folds heaps[1:] into heaps[0] and drains it sorted into dst.
func mergeAppend(heaps []TopK, dst []knn.Neighbor) []knn.Neighbor {
	for i := 1; i < len(heaps); i++ {
		heaps[0].Merge(&heaps[i])
	}
	return heaps[0].AppendSorted(dst)
}

// --- full-store scan ---

// Scan scores the query against every store row and appends the k nearest
// (by squared Euclidean distance, ties by ID) to dst.
func (e *Engine) Scan(s *Store, q []float32, k int, dst []knn.Neighbor) ([]knn.Neighbor, error) {
	e = e.orDefault()
	if len(q) != s.dim && s.n > 0 {
		return dst, vec.ErrDimensionMismatch
	}
	start := time.Now()
	sc := getScratch(e.par, k)
	if e.scalar {
		scanScalarRange(s, q, 0, s.n, &sc.heaps[0])
	} else {
		qn := dot8(q, q)
		parallelFor(e.par, s.n, func(w, lo, hi int) {
			scanRange(s, q, qn, lo, hi, &sc.heaps[w])
		})
	}
	dst = mergeAppend(sc.heaps, dst)
	scanScratches.Put(sc)
	e.account(s.n, start)
	return dst, nil
}

// scanRange is the tuned per-chunk loop: stream rows, norm-trick distance,
// threshold test before touching the heap.
func scanRange(s *Store, q []float32, qn float32, lo, hi int, top *TopK) {
	thr := top.Threshold()
	for i := lo; i < hi; i++ {
		d := normDist(q, qn, s.Row(i), s.norms[i])
		// ≤ keeps equal-distance smaller-ID candidates eligible, so the
		// result matches the reference selection exactly.
		if d <= thr {
			top.Consider(uint32(i), d)
			thr = top.Threshold()
		}
	}
}

// scanScalarRange is the reference: per-point diff-squared distance (the
// pre-engine vec kernel), same selection.
func scanScalarRange(s *Store, q []float32, lo, hi int, top *TopK) {
	for i := lo; i < hi; i++ {
		top.Consider(uint32(i), vec.SquaredEuclidean(q, s.Row(i)))
	}
}

// --- subset scan ---

// ScanSubset scores the query against the rows named by ids (out-of-range
// IDs are skipped, mirroring the wire contract) and appends the k nearest to
// dst — the HDSearch leaf's per-request computation.
func (e *Engine) ScanSubset(s *Store, q []float32, ids []uint32, k int, dst []knn.Neighbor) ([]knn.Neighbor, error) {
	e = e.orDefault()
	if len(q) != s.dim && s.n > 0 {
		return dst, vec.ErrDimensionMismatch
	}
	start := time.Now()
	sc := getScratch(e.par, k)
	if e.scalar {
		top := &sc.heaps[0]
		for _, id := range ids {
			if int(id) >= s.n {
				continue
			}
			top.Consider(id, vec.SquaredEuclidean(q, s.Row(int(id))))
		}
	} else {
		qn := dot8(q, q)
		parallelFor(e.par, len(ids), func(w, lo, hi int) {
			top := &sc.heaps[w]
			thr := top.Threshold()
			for _, id := range ids[lo:hi] {
				if int(id) >= s.n {
					continue
				}
				d := normDist(q, qn, s.Row(int(id)), s.norms[id])
				if d <= thr {
					top.Consider(id, d)
					thr = top.Threshold()
				}
			}
		})
	}
	dst = mergeAppend(sc.heaps, dst)
	scanScratches.Put(sc)
	e.account(len(ids), start)
	return dst, nil
}

// --- multi-query tile scan ---

// ScanMulti scores every query against every store row with the tile
// kernel: the point block a chunk walks stays hot in cache while all queries
// score it, so a batched carrier's queries share each row's memory traffic.
// Results are per-query, each the k nearest appended fresh.
func (e *Engine) ScanMulti(s *Store, queries [][]float32, k int) ([][]knn.Neighbor, error) {
	e = e.orDefault()
	for _, q := range queries {
		if len(q) != s.dim && s.n > 0 {
			return nil, vec.ErrDimensionMismatch
		}
	}
	nq := len(queries)
	if nq == 0 {
		return nil, nil
	}
	start := time.Now()
	out := make([][]knn.Neighbor, nq)
	if e.scalar {
		sc := getScratch(1, k)
		for qi, q := range queries {
			sc.heaps[0].Reset(k)
			scanScalarRange(s, q, 0, s.n, &sc.heaps[0])
			out[qi] = sc.heaps[0].AppendSorted(nil)
		}
		scanScratches.Put(sc)
		e.account(s.n*nq, start)
		return out, nil
	}
	qns := make([]float32, nq)
	for qi, q := range queries {
		qns[qi] = dot8(q, q)
	}
	sc := getScratch(e.par*nq, k)
	parallelFor(e.par, s.n, func(w, lo, hi int) {
		heaps := sc.heaps[w*nq : (w+1)*nq]
		for i := lo; i < hi; i++ {
			row := s.Row(i)
			rn := s.norms[i]
			for qi, q := range queries {
				d := normDist(q, qns[qi], row, rn)
				top := &heaps[qi]
				if d <= top.Threshold() {
					top.Consider(uint32(i), d)
				}
			}
		}
	})
	for qi := 0; qi < nq; qi++ {
		for w := 1; w < e.par; w++ {
			sc.heaps[qi].Merge(&sc.heaps[w*nq+qi])
		}
		out[qi] = sc.heaps[qi].AppendSorted(nil)
	}
	scanScratches.Put(sc)
	e.account(s.n*nq, start)
	return out, nil
}

// --- cosine neighborhoods (Recommend) ---

// cosineDist returns 1 − cosine similarity in the engine's float32 path;
// zero-norm rows score distance 1 (similarity 0), matching the reference.
func cosineDist(q []float32, qn float32, row []float32, rn float32) float32 {
	if qn == 0 || rn == 0 {
		return 1
	}
	return 1 - dot8(q, row)/float32(math.Sqrt(float64(qn)*float64(rn)))
}

// cosineDistScalar is the reference: float64 accumulation with per-pair
// norms, the pre-engine knn.CosineMetric arithmetic.
func cosineDistScalar(q, row []float32) float32 {
	var dot, na, nb float64
	for i := range q {
		a, b := float64(q[i]), float64(row[i])
		dot += a * b
		na += a * a
		nb += b * b
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return float32(1 - dot/(math.Sqrt(na)*math.Sqrt(nb)))
}

// CosineNeighbors finds the k rows most cosine-similar to row `row`,
// excluding the row itself and any row whose include mask entry is false
// (nil includes all) — Recommend's user-neighborhood scan over its
// latent-factor store, with the exclusion applied inline instead of through
// a per-request exclusion map.
func (e *Engine) CosineNeighbors(s *Store, row int, include []bool, k int, dst []knn.Neighbor) ([]knn.Neighbor, error) {
	e = e.orDefault()
	if row < 0 || row >= s.n {
		return dst, vec.ErrDimensionMismatch
	}
	start := time.Now()
	q := s.Row(row)
	qn := s.norms[row]
	sc := getScratch(e.par, k)
	if e.scalar {
		top := &sc.heaps[0]
		for i := 0; i < s.n; i++ {
			if i == row || (include != nil && !include[i]) {
				continue
			}
			top.Consider(uint32(i), cosineDistScalar(q, s.Row(i)))
		}
	} else {
		parallelFor(e.par, s.n, func(w, lo, hi int) {
			top := &sc.heaps[w]
			thr := top.Threshold()
			for i := lo; i < hi; i++ {
				if i == row || (include != nil && !include[i]) {
					continue
				}
				d := cosineDist(q, qn, s.Row(i), s.norms[i])
				if d <= thr {
					top.Consider(uint32(i), d)
					thr = top.Threshold()
				}
			}
		})
	}
	dst = mergeAppend(sc.heaps, dst)
	scanScratches.Put(sc)
	e.account(s.n, start)
	return dst, nil
}

// CosineNeighborsMulti runs CosineNeighbors for several query rows with the
// tile kernel — the batched-carrier form PredictBatch feeds with its
// distinct users.
func (e *Engine) CosineNeighborsMulti(s *Store, rows []int, include []bool, k int) ([][]knn.Neighbor, error) {
	e = e.orDefault()
	nq := len(rows)
	if nq == 0 {
		return nil, nil
	}
	for _, r := range rows {
		if r < 0 || r >= s.n {
			return nil, vec.ErrDimensionMismatch
		}
	}
	if e.scalar || nq == 1 {
		out := make([][]knn.Neighbor, nq)
		var err error
		for qi, r := range rows {
			out[qi], err = e.CosineNeighbors(s, r, include, k, nil)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	start := time.Now()
	sc := getScratch(e.par*nq, k)
	parallelFor(e.par, s.n, func(w, lo, hi int) {
		heaps := sc.heaps[w*nq : (w+1)*nq]
		for i := lo; i < hi; i++ {
			if include != nil && !include[i] {
				continue
			}
			p := s.Row(i)
			pn := s.norms[i]
			for qi, r := range rows {
				if i == r {
					continue
				}
				d := cosineDist(s.Row(r), s.norms[r], p, pn)
				top := &heaps[qi]
				if d <= top.Threshold() {
					top.Consider(uint32(i), d)
				}
			}
		}
	})
	out := make([][]knn.Neighbor, nq)
	for qi := 0; qi < nq; qi++ {
		for w := 1; w < e.par; w++ {
			sc.heaps[qi].Merge(&sc.heaps[w*nq+qi])
		}
		out[qi] = sc.heaps[qi].AppendSorted(nil)
	}
	scanScratches.Put(sc)
	e.account(s.n*nq, start)
	return out, nil
}
