//go:build !amd64

package kernel

// Non-amd64 builds always take the portable unrolled Go kernel.

func dotSIMD(a, b *float32, n int) float32 { panic("kernel: dotSIMD without SIMD support") }
