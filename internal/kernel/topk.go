package kernel

import (
	"musuite/internal/knn"
)

// TopK is a bounded max-heap over (distance, id) keeping the k nearest
// candidates seen so far, with the current worst on top for O(1) rejection.
// The order is total — ascending distance, ties broken by ascending ID — so
// any chunking of the same candidate multiset selects the same top-k, which
// is what makes the parallel scan bit-identical to the serial one.  The heap
// is hand-rolled (no container/heap) so Consider stays inlineable-ish and
// free of interface boxing on the hot path.
type TopK struct {
	k int
	h []knn.Neighbor
}

// NewTopK returns a heap bounded at k.
func NewTopK(k int) *TopK {
	t := &TopK{}
	t.Reset(k)
	return t
}

// Reset empties the heap and re-bounds it at k, retaining capacity.
func (t *TopK) Reset(k int) {
	t.k = k
	if cap(t.h) < k {
		t.h = make([]knn.Neighbor, 0, k)
	} else {
		t.h = t.h[:0]
	}
}

// Len reports the current occupancy.
func (t *TopK) Len() int { return len(t.h) }

// Threshold returns the current worst kept distance, or +range max when the
// heap is not yet full — candidates at or below it might still be admitted
// (ties are resolved by ID), anything strictly above it cannot.
func (t *TopK) Threshold() float32 {
	if len(t.h) < t.k {
		return maxFloat32
	}
	return t.h[0].Distance
}

const maxFloat32 = 0x1p127 * (1 + (1 - 0x1p-23)) // math.MaxFloat32 without the import

// further is the heap priority: a sorts after b in the final order.
func further(a, b knn.Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.ID > b.ID
}

// Consider offers one candidate.
func (t *TopK) Consider(id uint32, dist float32) {
	if t.k <= 0 {
		return
	}
	n := knn.Neighbor{ID: id, Distance: dist}
	if len(t.h) < t.k {
		t.h = append(t.h, n)
		t.siftUp(len(t.h) - 1)
		return
	}
	if !further(t.h[0], n) {
		return
	}
	t.h[0] = n
	t.siftDown(0)
}

// Merge folds another heap's contents into t (o is left unchanged).
func (t *TopK) Merge(o *TopK) {
	for _, n := range o.h {
		t.Consider(n.ID, n.Distance)
	}
}

// AppendSorted drains the heap into dst in ascending (distance, id) order.
// The heap is emptied; Reset before reuse.
func (t *TopK) AppendSorted(dst []knn.Neighbor) []knn.Neighbor {
	m := len(t.h)
	start := len(dst)
	dst = append(dst, t.h...)
	// Heap-sort in place: repeatedly swap the worst (root) to the end.
	h := dst[start : start+m]
	t.h = t.h[:0]
	for end := m - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDownSlice(h[:end], 0)
	}
	return dst
}

func (t *TopK) siftUp(i int) {
	h := t.h
	for i > 0 {
		parent := (i - 1) / 2
		if !further(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (t *TopK) siftDown(i int) { siftDownSlice(t.h, i) }

func siftDownSlice(h []knn.Neighbor, i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && further(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && further(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
