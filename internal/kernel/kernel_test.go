package kernel

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"musuite/internal/knn"
	"musuite/internal/vec"
)

// randStore builds a deterministic random store.  A few rows are exact
// copies of earlier rows so distance ties are exercised, not just possible.
func randStore(r *rand.Rand, n, dim int) *Store {
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	for c := 0; c < n/16; c++ {
		src, dst := r.Intn(n), r.Intn(n)
		copy(data[dst*dim:(dst+1)*dim], data[src*dim:(src+1)*dim])
	}
	s, err := FromFlat(data, dim)
	if err != nil {
		panic(err)
	}
	return s
}

func randQuery(r *rand.Rand, dim int) []float32 {
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	return q
}

func neighborsEqual(a, b []knn.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopKMatchesSelect: the streaming bounded heap selects exactly what the
// reference knn.Select selects, including its tie order — bit for bit.
func TestTopKMatchesSelect(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		k := 1 + r.Intn(20)
		cands := make([]knn.Neighbor, n)
		for i := range cands {
			// Coarse quantization manufactures duplicate distances.
			cands[i] = knn.Neighbor{
				ID:       uint32(r.Intn(n)),
				Distance: float32(r.Intn(32)) / 4,
			}
		}
		top := NewTopK(k)
		for _, c := range cands {
			top.Consider(c.ID, c.Distance)
		}
		got := top.AppendSorted(nil)
		want := knn.Select(cands, k)
		return neighborsEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKReset: a recycled heap behaves like a fresh one.
func TestTopKReset(t *testing.T) {
	top := NewTopK(3)
	for i := 0; i < 10; i++ {
		top.Consider(uint32(i), float32(10-i))
	}
	top.Reset(2)
	if top.Len() != 0 {
		t.Fatalf("Len after Reset = %d", top.Len())
	}
	top.Consider(7, 2)
	top.Consider(8, 1)
	top.Consider(9, 3)
	got := top.AppendSorted(nil)
	want := []knn.Neighbor{{ID: 8, Distance: 1}, {ID: 7, Distance: 2}}
	if !neighborsEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestScanEquivalenceParallelSerial: chunked parallel scans return the exact
// neighbors of a serial scan — the shared per-pair arithmetic and total
// (distance, ID) order make the result independent of chunking.
func TestScanEquivalenceParallelSerial(t *testing.T) {
	serial := New(Config{Parallelism: 1})
	par := New(Config{Parallelism: 8})
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Past minParallelPoints so parallelFor actually chunks.
		n := minParallelPoints + r.Intn(3*chunkPoints)
		dim := 1 + r.Intn(40)
		k := 1 + r.Intn(16)
		s := randStore(r, n, dim)
		q := randQuery(r, dim)
		a, err1 := serial.Scan(s, q, k, nil)
		b, err2 := par.Scan(s, q, k, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return neighborsEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestScanEquivalenceScalar: the norm-trick engine agrees with the scalar
// diff-squared reference within float32 cancellation tolerance, rank by rank
// (IDs may swap across near-ties, distances may not drift).
func TestScanEquivalenceScalar(t *testing.T) {
	tuned := New(Config{Parallelism: 4})
	scalar := New(Config{ForceScalar: true})
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(800)
		dim := 1 + r.Intn(64)
		k := 1 + r.Intn(10)
		s := randStore(r, n, dim)
		q := randQuery(r, dim)
		a, err1 := tuned.Scan(s, q, k, nil)
		b, err2 := scalar.Scan(s, q, k, nil)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		qn := dot8(q, q)
		for i := range a {
			// The documented bound: cancellation in ‖q‖²+‖p‖²−2·q·p is
			// proportional to the norms' magnitude, not the distance's.
			tol := 1e-4 * (qn + s.Norm2(int(a[i].ID)) + 1)
			if diff := a[i].Distance - b[i].Distance; diff > tol || diff < -tol {
				t.Logf("seed %d rank %d: tuned %v scalar %v tol %v", seed, i, a[i], b[i], tol)
				return false
			}
			ref := vec.SquaredEuclidean(q, s.Row(int(a[i].ID)))
			if diff := a[i].Distance - ref; diff > tol || diff < -tol {
				t.Logf("seed %d rank %d: reported %v recomputed %v", seed, i, a[i].Distance, ref)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScanSubsetEquivalence: the subset scan matches both the serial engine
// and (via the scalar engine) the pre-engine knn.Subset reference bit for
// bit.  IDs include duplicates and out-of-range entries.
func TestScanSubsetEquivalence(t *testing.T) {
	serial := New(Config{Parallelism: 1})
	par := New(Config{Parallelism: 8})
	scalar := New(Config{ForceScalar: true})
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 300 + r.Intn(300)
		dim := 1 + r.Intn(32)
		k := 1 + r.Intn(10)
		s := randStore(r, n, dim)
		q := randQuery(r, dim)
		ids := make([]uint32, minParallelPoints+r.Intn(chunkPoints))
		for i := range ids {
			ids[i] = uint32(r.Intn(n + n/8)) // some out of range
		}
		a, err1 := serial.ScanSubset(s, q, ids, k, nil)
		b, err2 := par.ScanSubset(s, q, ids, k, nil)
		if err1 != nil || err2 != nil || !neighborsEqual(a, b) {
			return false
		}
		// Scalar engine == knn.Subset: same distances, same total order.
		vecs := make([]vec.Vector, n)
		for i := range vecs {
			vecs[i] = vec.Vector(s.Row(i))
		}
		c, err3 := scalar.ScanSubset(s, q, ids, k, nil)
		if err3 != nil {
			return false
		}
		return neighborsEqual(c, knn.Subset(q, vecs, ids, k))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestScanMultiEquivalence: the multi-query tile kernel returns exactly what
// per-query scans return.
func TestScanMultiEquivalence(t *testing.T) {
	eng := New(Config{Parallelism: 4})
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := minParallelPoints + r.Intn(chunkPoints)
		dim := 1 + r.Intn(24)
		k := 1 + r.Intn(8)
		nq := 1 + r.Intn(5)
		s := randStore(r, n, dim)
		queries := make([][]float32, nq)
		for i := range queries {
			queries[i] = randQuery(r, dim)
		}
		multi, err := eng.ScanMulti(s, queries, k)
		if err != nil {
			return false
		}
		for qi, q := range queries {
			single, err := eng.Scan(s, q, k, nil)
			if err != nil || !neighborsEqual(multi[qi], single) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestCosineEquivalence: the tile cosine kernel matches per-row scans bit
// for bit, and the tuned float32 path stays within tolerance of the float64
// reference arithmetic.
func TestCosineEquivalence(t *testing.T) {
	eng := New(Config{Parallelism: 4})
	scalar := New(Config{ForceScalar: true})
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(200)
		dim := 1 + r.Intn(16)
		k := 1 + r.Intn(10)
		s := randStore(r, n, dim)
		include := make([]bool, n)
		for i := range include {
			include[i] = r.Intn(8) != 0
		}
		rows := make([]int, 2+r.Intn(4))
		for i := range rows {
			rows[i] = r.Intn(n)
		}
		multi, err := eng.CosineNeighborsMulti(s, rows, include, k)
		if err != nil {
			return false
		}
		for qi, row := range rows {
			single, err := eng.CosineNeighbors(s, row, include, k, nil)
			if err != nil || !neighborsEqual(multi[qi], single) {
				return false
			}
			ref, err := scalar.CosineNeighbors(s, row, include, k, nil)
			if err != nil || len(single) != len(ref) {
				return false
			}
			for i := range single {
				const tol = 1e-4
				if diff := single[i].Distance - ref[i].Distance; diff > tol || diff < -tol {
					t.Logf("seed %d row %d rank %d: tuned %v ref %v", seed, row, i, single[i], ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelScanCoversEveryIndex: parallelFor visits each index exactly
// once whatever the parallelism and size.
func TestParallelScanCoversEveryIndex(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, chunkPoints - 1, minParallelPoints, minParallelPoints + 3*chunkPoints + 17} {
			visits := make([]atomic.Int32, n)
			parallelFor(par, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					visits[i].Add(1)
				}
			})
			for i := range visits {
				if c := visits[i].Load(); c != 1 {
					t.Fatalf("par=%d n=%d: index %d visited %d times", par, n, i, c)
				}
			}
		}
	}
}

// TestParallelScanStress hammers one engine from many goroutines — run
// under -race this checks the scratch pooling and the helper pool, and every
// result must still equal the serial answer.
func TestParallelScanStress(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const n, dim, k = 2 * minParallelPoints, 24, 8
	s := randStore(r, n, dim)
	queries := make([][]float32, 8)
	for i := range queries {
		queries[i] = randQuery(r, dim)
	}
	serial := New(Config{Parallelism: 1})
	want := make([][]knn.Neighbor, len(queries))
	for i, q := range queries {
		var err error
		want[i], err = serial.Scan(s, q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng := New(Config{Parallelism: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var dst []knn.Neighbor
			for iter := 0; iter < 50; iter++ {
				qi := (g + iter) % len(queries)
				var err error
				dst, err = eng.Scan(s, queries[qi], k, dst[:0])
				if err != nil {
					errs <- err
					return
				}
				if !neighborsEqual(dst, want[qi]) {
					t.Errorf("goroutine %d iter %d: parallel result diverged", g, iter)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Scans == 0 || st.Points == 0 {
		t.Fatalf("engine counters not accounted: %+v", st)
	}
}

// TestStoreValidation: ragged builds are rejected; conversions round-trip.
func TestStoreValidation(t *testing.T) {
	if _, err := BuildStore([]vec.Vector{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged corpus accepted")
	}
	if _, err := FromFlat(make([]float32, 7), 2); err == nil {
		t.Fatal("non-multiple flat length accepted")
	}
	s, err := FromFloat64([]float64{1, 2, 3, 4, 5, 6}, 3)
	if err != nil || s.Len() != 2 || s.Dim() != 3 {
		t.Fatalf("FromFloat64: %v len=%d dim=%d", err, s.Len(), s.Dim())
	}
	if got := s.Row(1); !reflect.DeepEqual(got, []float32{4, 5, 6}) {
		t.Fatalf("Row(1) = %v", got)
	}
	q := []float32{1, 2} // wrong dim
	if _, err := New(Config{}).Scan(s, q, 1, nil); err != vec.ErrDimensionMismatch {
		t.Fatalf("dim mismatch not rejected: %v", err)
	}
}
