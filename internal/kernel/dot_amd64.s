//go:build amd64

#include "textflag.h"

// func dotSIMD(a, b *float32, n int) float32
// n must be a positive multiple of 8.  Four YMM accumulators hide FMA
// latency across 32-element blocks; leftover 8-element blocks drain through
// one accumulator; a horizontal reduction produces the scalar sum.
TEXT ·dotSIMD(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	MOVQ CX, DX
	SHRQ $5, DX        // 32-element blocks
	JZ   tail8

loop32:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  loop32

tail8:
	ANDQ $31, CX
	SHRQ $3, CX        // remaining 8-element blocks
	JZ   reduce

loop8:
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop8

reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
