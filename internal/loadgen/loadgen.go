// Package loadgen implements μSuite's load-testing methodology (paper §V):
// a closed-loop mode that finds each service's peak sustainable throughput,
// and an open-loop mode with Poisson inter-arrivals for tail-latency
// measurement.
//
// The open-loop generator avoids the coordinated-omission problem the paper
// criticizes in closed-loop testers (YCSB/Faban): request latency is
// measured from the request's *scheduled* arrival time, so queueing delay
// caused by a slow server is charged to the server rather than silently
// removing load.
package loadgen

import (
	"time"

	"musuite/internal/rpc"
	"musuite/internal/stats"
)

// IssueFunc launches one asynchronous request and returns its in-flight
// call; the completion must be delivered on done.  Service clients' Go
// methods have exactly this shape.
type IssueFunc func(done chan *rpc.Call) *rpc.Call

// --- closed loop ---

// ClosedLoopConfig parameterizes a closed-loop run.
type ClosedLoopConfig struct {
	// Concurrency is the number of synchronous client workers.
	Concurrency int
	// Duration is the measurement window.
	Duration time.Duration
	// Warmup requests per worker are issued and discarded first.
	Warmup int
}

// ClosedLoopResult summarizes a closed-loop run.
type ClosedLoopResult struct {
	// Throughput is completed requests per second.
	Throughput float64
	// Completed and Errors count requests in the window.  Shed counts
	// typed overload rejections (rpc.OverloadError) separately: a shed is
	// the server refusing work by design, not a failure.
	Completed, Errors, Shed uint64
	// Latency summarizes per-request latency (issue → completion).
	Latency stats.Snapshot
}

// RunClosedLoop drives the service with Concurrency workers, each issuing
// its next request as soon as the previous completes.
func RunClosedLoop(issue IssueFunc, cfg ClosedLoopConfig) ClosedLoopResult {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	hist := stats.NewHistogram()
	type workerResult struct{ completed, errors, shed uint64 }
	results := make(chan workerResult, cfg.Concurrency)
	deadline := time.Now().Add(cfg.Duration)

	for w := 0; w < cfg.Concurrency; w++ {
		go func() {
			done := make(chan *rpc.Call, 1)
			var wr workerResult
			for i := 0; i < cfg.Warmup; i++ {
				issue(done)
				<-done
			}
			for time.Now().Before(deadline) {
				start := time.Now()
				issue(done)
				call := <-done
				if call.Err != nil {
					if rpc.IsOverload(call.Err) {
						wr.shed++
					} else {
						wr.errors++
					}
					continue
				}
				wr.completed++
				hist.Record(time.Since(start))
			}
			results <- wr
		}()
	}
	var total workerResult
	for w := 0; w < cfg.Concurrency; w++ {
		wr := <-results
		total.completed += wr.completed
		total.errors += wr.errors
		total.shed += wr.shed
	}
	return ClosedLoopResult{
		Throughput: float64(total.completed) / cfg.Duration.Seconds(),
		Completed:  total.completed,
		Errors:     total.errors,
		Shed:       total.shed,
		Latency:    hist.Snapshot(),
	}
}

// --- saturation probe ---

// SaturationConfig parameterizes the peak-throughput search.
type SaturationConfig struct {
	// Window is the measurement window per concurrency step.
	Window time.Duration
	// MaxConcurrency bounds the search (default 64).
	MaxConcurrency int
	// PlateauFraction stops the search when doubling concurrency gains
	// less than this fraction of throughput (default 0.05).
	PlateauFraction float64
}

// SaturationResult reports the discovered peak.
type SaturationResult struct {
	// Throughput is the peak sustainable QPS.
	Throughput float64
	// Concurrency is the worker count that achieved it.
	Concurrency int
	// Steps records each probe step's throughput, keyed by concurrency.
	Steps []SaturationStep
}

// SaturationStep is one probe measurement.
type SaturationStep struct {
	Concurrency int
	Throughput  float64
}

// FindSaturation doubles closed-loop concurrency until throughput plateaus —
// the paper's peak-sustainable-throughput methodology (Fig. 9).
func FindSaturation(issue IssueFunc, cfg SaturationConfig) SaturationResult {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 64
	}
	if cfg.PlateauFraction <= 0 {
		cfg.PlateauFraction = 0.05
	}
	var res SaturationResult
	best := 0.0
	for conc := 1; conc <= cfg.MaxConcurrency; conc *= 2 {
		r := RunClosedLoop(issue, ClosedLoopConfig{
			Concurrency: conc,
			Duration:    cfg.Window,
			Warmup:      2,
		})
		res.Steps = append(res.Steps, SaturationStep{Concurrency: conc, Throughput: r.Throughput})
		if r.Throughput > best {
			if best > 0 && (r.Throughput-best)/best < cfg.PlateauFraction {
				best = r.Throughput
				res.Throughput = best
				res.Concurrency = conc
				break
			}
			best = r.Throughput
			res.Throughput = best
			res.Concurrency = conc
		} else if best > 0 {
			break // throughput fell: past saturation
		}
	}
	return res
}

// --- open loop ---

// OpenLoopConfig parameterizes an open-loop (Poisson) run.
type OpenLoopConfig struct {
	// QPS is the offered load.
	QPS float64
	// Duration is the offered-load window (completions are drained
	// afterwards).
	Duration time.Duration
	// Seed drives the exponential inter-arrival sampling.
	Seed int64
	// DrainTimeout bounds the post-window wait for stragglers
	// (default 10s).
	DrainTimeout time.Duration
	// CaptureRaw retains every latency sample for violin rendering.
	CaptureRaw bool
}

// OpenLoopResult summarizes an open-loop run.
type OpenLoopResult struct {
	// Offered and Completed count requests; Errors and Dropped (still in
	// flight at drain timeout) are the failure modes.  Shed counts typed
	// overload rejections (rpc.OverloadError) separately from Errors: a
	// shed is goodput lost by design — the saturation-ramp experiment
	// requires overload to surface here, never as an untyped failure.
	Offered, Completed, Errors, Dropped, Shed uint64
	// AchievedQPS is completions over the offered-load window.
	AchievedQPS float64
	// Latency summarizes scheduled-send→completion latency.
	Latency stats.Snapshot
	// Raw holds every latency sample when CaptureRaw was set.
	Raw []time.Duration
}

// RunOpenLoop offers Poisson arrivals at cfg.QPS, measuring each request
// from its scheduled arrival time (coordinated-omission safe).
func RunOpenLoop(issue IssueFunc, cfg OpenLoopConfig) OpenLoopResult {
	if cfg.QPS <= 0 {
		cfg.QPS = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	res := RunProcess(issue, PoissonArrivals(cfg.QPS, cfg.Duration, cfg.Seed), ProcessConfig{
		Window:       cfg.Duration,
		DrainTimeout: cfg.DrainTimeout,
		CaptureRaw:   cfg.CaptureRaw,
	})
	return res.Total
}

// ReplayConfig parameterizes a trace-replay run: a recorded arrival process
// (e.g. trace.ArrivalOffsets of an exported trace) re-offered against a live
// deployment.
type ReplayConfig struct {
	// Offsets schedules arrival i at Offsets[i] from the start of the run.
	// Must be sorted ascending (offset zero first).
	Offsets []time.Duration
	// Speed scales the replay clock: 1 re-offers at recorded speed, 2 at
	// twice the recorded rate (default 1).
	Speed float64
	// DrainTimeout bounds the post-window wait for stragglers (default 10s).
	DrainTimeout time.Duration
	// CaptureRaw retains every latency sample.
	CaptureRaw bool
}

// RunReplay re-offers a recorded arrival process, measuring each request
// from its scheduled arrival exactly as RunOpenLoop does.  The workload
// bodies come from issue (the recorded traces carry timing, not payloads);
// what is reproduced is the offered-load process — bursts included, which a
// Poisson model would smooth away.
func RunReplay(issue IssueFunc, cfg ReplayConfig) OpenLoopResult {
	if len(cfg.Offsets) == 0 {
		return OpenLoopResult{}
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	window := time.Duration(float64(cfg.Offsets[len(cfg.Offsets)-1])/speed) + time.Millisecond
	res := RunProcess(issue, ReplayArrivals(cfg.Offsets, speed), ProcessConfig{
		Window:       window,
		DrainTimeout: cfg.DrainTimeout,
		CaptureRaw:   cfg.CaptureRaw,
	})
	return res.Total
}
