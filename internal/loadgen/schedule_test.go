package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestRunScheduleEmptyAndZeroPhases(t *testing.T) {
	if got := RunSchedule(fakeService(0), nil, 1, time.Second); got != nil {
		t.Fatalf("empty schedule: %v", got)
	}
	res := RunSchedule(fakeService(0), []LoadPhase{{Name: "dead", QPS: 0, Duration: time.Second}}, 1, time.Second)
	if len(res) != 1 || res[0].Offered != 0 {
		t.Fatalf("zero-QPS phase offered %d", res[0].Offered)
	}
}

func TestRunScheduleOffersPerPhase(t *testing.T) {
	phases := []LoadPhase{
		{Name: "low", QPS: 200, Duration: 300 * time.Millisecond},
		{Name: "high", QPS: 1000, Duration: 300 * time.Millisecond},
	}
	res := RunSchedule(fakeService(0), phases, 2, 5*time.Second)
	if len(res) != 2 {
		t.Fatalf("results=%d", len(res))
	}
	// Expected counts within 5σ of λ·T.
	for i, want := range []float64{60, 300} {
		got := float64(res[i].Offered)
		if math.Abs(got-want) > 5*math.Sqrt(want)+1 {
			t.Errorf("phase %d offered %v want ≈%v", i, got, want)
		}
		if res[i].Completed != res[i].Offered {
			t.Errorf("phase %d completed %d of %d", i, res[i].Completed, res[i].Offered)
		}
		if res[i].Errors != 0 {
			t.Errorf("phase %d errors=%d", i, res[i].Errors)
		}
	}
}

// TestFlashCrowdSpilloverRaisesTail is the scenario's point: a spike beyond
// a serial server's capacity must inflate the spike phase's tail latencies
// far beyond the baseline phase's.
func TestFlashCrowdSpilloverRaisesTail(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load-generation measurement")
	}
	// Serial server: 4ms service → 250 QPS capacity.
	svc := serialService(4 * time.Millisecond)
	phases := FlashCrowd(100, 6, 400*time.Millisecond, 300*time.Millisecond) // spike at 600 QPS
	res := RunSchedule(svc, phases, 3, 20*time.Second)
	if len(res) != 3 {
		t.Fatalf("results=%d", len(res))
	}
	base, spike := res[0], res[1]
	if base.Completed == 0 || spike.Completed == 0 {
		t.Fatalf("empty phases: %+v", res)
	}
	if spike.Latency.P99 < 4*base.Latency.P99 {
		t.Fatalf("spike p99 %v not ≫ baseline p99 %v", spike.Latency.P99, base.Latency.P99)
	}
	// Recovery still sees residual queue (spillover), so its median
	// should exceed the baseline's median.
	recovery := res[2]
	if recovery.Latency.Median < base.Latency.Median {
		t.Logf("note: recovery median %v below baseline %v (queue drained fast)",
			recovery.Latency.Median, base.Latency.Median)
	}
}

func TestFlashCrowdShape(t *testing.T) {
	phases := FlashCrowd(100, 10, time.Second, 200*time.Millisecond)
	if len(phases) != 3 {
		t.Fatalf("phases=%d", len(phases))
	}
	if phases[1].QPS != 1000 {
		t.Errorf("spike qps=%v", phases[1].QPS)
	}
	if phases[0].QPS != phases[2].QPS {
		t.Error("baseline and recovery differ")
	}
}

func TestDiurnalShape(t *testing.T) {
	phases := Diurnal(50, 450, 4, 9*time.Second)
	if len(phases) != 9 {
		t.Fatalf("phases=%d", len(phases))
	}
	if phases[4].QPS != 450 || phases[4].Name != "peak" {
		t.Fatalf("peak=%+v", phases[4])
	}
	if phases[0].QPS != 50 || phases[8].QPS != 50 {
		t.Fatalf("trough ends wrong: %v %v", phases[0].QPS, phases[8].QPS)
	}
	// Monotone rise then fall.
	for i := 1; i <= 4; i++ {
		if phases[i].QPS <= phases[i-1].QPS {
			t.Fatalf("not rising at %d", i)
		}
	}
	for i := 5; i < 9; i++ {
		if phases[i].QPS >= phases[i-1].QPS {
			t.Fatalf("not falling at %d", i)
		}
	}
	// Defaults: stepsPerSide < 1 clamps.
	if got := Diurnal(10, 20, 0, time.Second); len(got) != 3 {
		t.Fatalf("clamped diurnal=%d", len(got))
	}
}

func TestRunScheduleCountsErrors(t *testing.T) {
	res := RunSchedule(failingService(2), []LoadPhase{
		{Name: "x", QPS: 500, Duration: 200 * time.Millisecond},
	}, 4, 5*time.Second)
	if res[0].Errors == 0 {
		t.Fatal("no errors recorded")
	}
	if res[0].Errors+res[0].Completed != res[0].Offered {
		t.Fatalf("accounting: %+v", res[0])
	}
}
