package loadgen

import (
	"time"

	"musuite/internal/stats"
)

// LoadPhase is one segment of a time-varying offered load: a flash crowd is
// a brief high-QPS phase between normal ones; a diurnal pattern is a slow
// staircase.  The paper motivates wide-ranging load support with exactly
// these scenarios (§VI-B).
type LoadPhase struct {
	// Name labels the phase in results ("baseline", "spike", ...).
	Name string
	// QPS is the offered load during the phase.
	QPS float64
	// Duration is the phase length.
	Duration time.Duration
}

// PhaseResult is one phase's measurement.  Because phases run back-to-back
// with no drain in between, queue buildup from an overloaded phase spills
// into the next one's latencies — the effect a flash crowd inflicts on real
// services.
type PhaseResult struct {
	Phase     LoadPhase
	Offered   uint64
	Completed uint64
	// Errors counts untyped failures; Shed counts typed overload
	// rejections (deliberate backpressure, not failure); Dropped counts
	// requests still unresolved at the drain timeout.
	Errors  uint64
	Shed    uint64
	Dropped uint64
	Latency stats.Snapshot
}

// Goodput is the phase's completion rate over its duration.
func (p PhaseResult) Goodput() float64 {
	if p.Phase.Duration <= 0 {
		return 0
	}
	return float64(p.Completed) / p.Phase.Duration.Seconds()
}

// RunSchedule offers the phases consecutively (single continuous run, no
// inter-phase drain) and reports per-phase latency distributions.  Requests
// are attributed to the phase in which they were *scheduled*.  After the
// last phase, completions are drained for up to drainTimeout.
func RunSchedule(issue IssueFunc, phases []LoadPhase, seed int64, drainTimeout time.Duration) []PhaseResult {
	if len(phases) == 0 {
		return nil
	}
	res := RunProcess(issue, PhasedArrivals(phases, seed), ProcessConfig{
		Phases:       phases,
		DrainTimeout: drainTimeout,
	})
	return res.Phases
}

// FlashCrowd builds the canonical three-phase spike schedule: baseline →
// spike at spikeFactor× → recovery at the baseline rate.
func FlashCrowd(baselineQPS float64, spikeFactor float64, baseline, spike time.Duration) []LoadPhase {
	return []LoadPhase{
		{Name: "baseline", QPS: baselineQPS, Duration: baseline},
		{Name: "spike", QPS: baselineQPS * spikeFactor, Duration: spike},
		{Name: "recovery", QPS: baselineQPS, Duration: baseline},
	}
}

// Diurnal builds a staircase schedule rising to peakQPS and back, with the
// given number of steps per side and total duration.
func Diurnal(troughQPS, peakQPS float64, stepsPerSide int, total time.Duration) []LoadPhase {
	if stepsPerSide < 1 {
		stepsPerSide = 1
	}
	n := 2*stepsPerSide + 1
	per := total / time.Duration(n)
	var phases []LoadPhase
	for i := 0; i < stepsPerSide; i++ {
		q := troughQPS + (peakQPS-troughQPS)*float64(i)/float64(stepsPerSide)
		phases = append(phases, LoadPhase{Name: "rise", QPS: q, Duration: per})
	}
	phases = append(phases, LoadPhase{Name: "peak", QPS: peakQPS, Duration: per})
	for i := stepsPerSide - 1; i >= 0; i-- {
		q := troughQPS + (peakQPS-troughQPS)*float64(i)/float64(stepsPerSide)
		phases = append(phases, LoadPhase{Name: "fall", QPS: q, Duration: per})
	}
	return phases
}

// Burst builds a square-wave schedule alternating base and base×factor load:
// each period opens with a burst lasting duty (clamped inside the period)
// and relaxes to the base rate for the remainder, repeated to fill total.
func Burst(baseQPS, factor float64, period, duty, total time.Duration) []LoadPhase {
	if period <= 0 {
		period = total
	}
	if duty <= 0 || duty > period {
		duty = period / 4
	}
	var phases []LoadPhase
	for off := time.Duration(0); off < total; off += period {
		rest := period
		if off+period > total {
			rest = total - off
		}
		up := duty
		if up > rest {
			up = rest
		}
		phases = append(phases, LoadPhase{Name: "burst", QPS: baseQPS * factor, Duration: up})
		if rest > up {
			phases = append(phases, LoadPhase{Name: "base", QPS: baseQPS, Duration: rest - up})
		}
	}
	return phases
}
