package loadgen

import (
	"math/rand"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/stats"
)

// LoadPhase is one segment of a time-varying offered load: a flash crowd is
// a brief high-QPS phase between normal ones; a diurnal pattern is a slow
// staircase.  The paper motivates wide-ranging load support with exactly
// these scenarios (§VI-B).
type LoadPhase struct {
	// Name labels the phase in results ("baseline", "spike", ...).
	Name string
	// QPS is the offered load during the phase.
	QPS float64
	// Duration is the phase length.
	Duration time.Duration
}

// PhaseResult is one phase's measurement.  Because phases run back-to-back
// with no drain in between, queue buildup from an overloaded phase spills
// into the next one's latencies — the effect a flash crowd inflicts on real
// services.
type PhaseResult struct {
	Phase     LoadPhase
	Offered   uint64
	Completed uint64
	Errors    uint64
	Latency   stats.Snapshot
}

// RunSchedule offers the phases consecutively (single continuous run, no
// inter-phase drain) and reports per-phase latency distributions.  Requests
// are attributed to the phase in which they were *scheduled*.  After the
// last phase, completions are drained for up to drainTimeout.
func RunSchedule(issue IssueFunc, phases []LoadPhase, seed int64, drainTimeout time.Duration) []PhaseResult {
	if len(phases) == 0 {
		return nil
	}
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))

	results := make([]PhaseResult, len(phases))
	hists := make([]*stats.Histogram, len(phases))
	for i := range results {
		results[i].Phase = phases[i]
		hists[i] = stats.NewHistogram()
	}

	type schedRecord struct {
		call  *rpc.Call
		sched time.Time
		phase int
	}
	done := make(chan *rpc.Call, 4096)
	records := make(chan schedRecord, 4096)

	dispatcherDone := make(chan struct{})
	go func() {
		defer close(dispatcherDone)
		next := time.Now()
		for pi, phase := range phases {
			if phase.QPS <= 0 || phase.Duration <= 0 {
				continue
			}
			deadline := next.Add(phase.Duration)
			for {
				gap := time.Duration(rng.ExpFloat64() / phase.QPS * float64(time.Second))
				next = next.Add(gap)
				if next.After(deadline) {
					// Carry the overshoot into the next
					// phase so the process stays Poisson
					// across the boundary.
					next = deadline
					break
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				call := issue(done)
				records <- schedRecord{call: call, sched: next, phase: pi}
				results[pi].Offered++
			}
		}
	}()

	sched := make(map[*rpc.Call]schedRecord)
	orphans := make(map[*rpc.Call]time.Time)
	var totalOffered, totalResolved uint64
	record := func(rec schedRecord, fallback time.Time) {
		totalResolved++
		if rec.call.Err != nil {
			results[rec.phase].Errors++
			return
		}
		end := rec.call.Received
		if end.IsZero() {
			end = fallback
		}
		hists[rec.phase].Record(end.Sub(rec.sched))
		results[rec.phase].Completed++
	}

	dispatchDoneSeen := false
	var drainDeadline time.Time
	for {
		if dispatchDoneSeen {
			if totalResolved >= totalOffered {
				break
			}
			if time.Now().After(drainDeadline) {
				break
			}
		}
		var timer *time.Timer
		var timeout <-chan time.Time
		if dispatchDoneSeen {
			timer = time.NewTimer(50 * time.Millisecond)
			timeout = timer.C
		}
		select {
		case <-dispatcherDone:
			dispatchDoneSeen = true
			drainDeadline = time.Now().Add(drainTimeout)
			for _, r := range results {
				totalOffered += r.Offered
			}
			dispatcherDone = nil
		case rec := <-records:
			if at, ok := orphans[rec.call]; ok {
				delete(orphans, rec.call)
				record(rec, at)
			} else {
				sched[rec.call] = rec
			}
		case call := <-done:
			if rec, ok := sched[call]; ok {
				delete(sched, call)
				record(rec, time.Now())
			} else {
				orphans[call] = time.Now()
			}
		case <-timeout:
			// Loop to re-check the drain deadline.
		}
		if timer != nil {
			timer.Stop()
		}
	}

	for i := range results {
		results[i].Latency = hists[i].Snapshot()
	}
	return results
}

// FlashCrowd builds the canonical three-phase spike schedule: baseline →
// spike at spikeFactor× → recovery at the baseline rate.
func FlashCrowd(baselineQPS float64, spikeFactor float64, baseline, spike time.Duration) []LoadPhase {
	return []LoadPhase{
		{Name: "baseline", QPS: baselineQPS, Duration: baseline},
		{Name: "spike", QPS: baselineQPS * spikeFactor, Duration: spike},
		{Name: "recovery", QPS: baselineQPS, Duration: baseline},
	}
}

// Diurnal builds a staircase schedule rising to peakQPS and back, with the
// given number of steps per side and total duration.
func Diurnal(troughQPS, peakQPS float64, stepsPerSide int, total time.Duration) []LoadPhase {
	if stepsPerSide < 1 {
		stepsPerSide = 1
	}
	n := 2*stepsPerSide + 1
	per := total / time.Duration(n)
	var phases []LoadPhase
	for i := 0; i < stepsPerSide; i++ {
		q := troughQPS + (peakQPS-troughQPS)*float64(i)/float64(stepsPerSide)
		phases = append(phases, LoadPhase{Name: "rise", QPS: q, Duration: per})
	}
	phases = append(phases, LoadPhase{Name: "peak", QPS: peakQPS, Duration: per})
	for i := stepsPerSide - 1; i >= 0; i-- {
		q := troughQPS + (peakQPS-troughQPS)*float64(i)/float64(stepsPerSide)
		phases = append(phases, LoadPhase{Name: "fall", QPS: q, Duration: per})
	}
	return phases
}
