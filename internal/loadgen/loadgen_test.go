package loadgen

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"musuite/internal/rpc"
)

// fakeService simulates a server with a fixed service time and unlimited
// concurrency; no network involved.
func fakeService(serviceTime time.Duration) IssueFunc {
	return func(done chan *rpc.Call) *rpc.Call {
		call := &rpc.Call{Done: done}
		go func() {
			if serviceTime > 0 {
				time.Sleep(serviceTime)
			}
			call.Received = time.Now()
			done <- call
		}()
		return call
	}
}

// serialService simulates a single-threaded server: requests queue and are
// served one at a time, so offered load above 1/serviceTime builds queues.
func serialService(serviceTime time.Duration) IssueFunc {
	queue := make(chan *rpc.Call, 100000)
	go func() {
		for call := range queue {
			time.Sleep(serviceTime)
			call.Received = time.Now()
			call.Done <- call
		}
	}()
	return func(done chan *rpc.Call) *rpc.Call {
		call := &rpc.Call{Done: done}
		queue <- call
		return call
	}
}

func failingService(everyNth int) IssueFunc {
	var n atomic.Int64
	return func(done chan *rpc.Call) *rpc.Call {
		call := &rpc.Call{Done: done}
		i := n.Add(1)
		go func() {
			if everyNth > 0 && i%int64(everyNth) == 0 {
				call.Err = errors.New("injected failure")
			} else {
				call.Received = time.Now()
			}
			done <- call
		}()
		return call
	}
}

func TestClosedLoopThroughputMatchesLittlesLaw(t *testing.T) {
	// 1ms service, 4 concurrent workers, unlimited server concurrency →
	// ≈4000 QPS.
	res := RunClosedLoop(fakeService(time.Millisecond), ClosedLoopConfig{
		Concurrency: 4, Duration: 500 * time.Millisecond, Warmup: 2,
	})
	if res.Errors != 0 {
		t.Fatalf("errors=%d", res.Errors)
	}
	if res.Throughput < 1500 || res.Throughput > 4500 {
		t.Fatalf("throughput=%v want ≈4000 (sleep jitter tolerated)", res.Throughput)
	}
	if res.Latency.Median < time.Millisecond {
		t.Fatalf("median=%v below service time", res.Latency.Median)
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	res := RunClosedLoop(failingService(3), ClosedLoopConfig{
		Concurrency: 2, Duration: 100 * time.Millisecond,
	})
	if res.Errors == 0 {
		t.Fatal("no errors recorded")
	}
	if res.Completed == 0 {
		t.Fatal("no successes recorded")
	}
	frac := float64(res.Errors) / float64(res.Errors+res.Completed)
	if frac < 0.2 || frac > 0.5 {
		t.Fatalf("error fraction=%v want ≈1/3", frac)
	}
}

func TestFindSaturationSerialServer(t *testing.T) {
	// A serial 2ms server saturates at ≈500 QPS no matter the
	// concurrency.
	res := FindSaturation(serialService(2*time.Millisecond), SaturationConfig{
		Window: 300 * time.Millisecond, MaxConcurrency: 16,
	})
	if res.Throughput < 250 || res.Throughput > 650 {
		t.Fatalf("saturation=%v want ≈500", res.Throughput)
	}
	if len(res.Steps) < 2 {
		t.Fatalf("steps=%v", res.Steps)
	}
}

func TestClosedLoopScalesWithParallelServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load-generation measurement")
	}
	// An unlimited-concurrency 5ms server: 8 workers must complete far
	// more than 1 worker (sleeps overlap regardless of CPU count).
	svc := fakeService(5 * time.Millisecond)
	one := RunClosedLoop(svc, ClosedLoopConfig{Concurrency: 1, Duration: 400 * time.Millisecond})
	eight := RunClosedLoop(svc, ClosedLoopConfig{Concurrency: 8, Duration: 400 * time.Millisecond})
	if eight.Throughput < one.Throughput*2 {
		t.Fatalf("no scaling: conc1=%v conc8=%v", one.Throughput, eight.Throughput)
	}
}

func TestOpenLoopOfferedLoadIsPoisson(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load-generation measurement")
	}
	const qps = 2000.0
	res := RunOpenLoop(fakeService(0), OpenLoopConfig{
		QPS: qps, Duration: time.Second, Seed: 1,
	})
	if res.Dropped != 0 || res.Errors != 0 {
		t.Fatalf("dropped=%d errors=%d", res.Dropped, res.Errors)
	}
	// Offered count ≈ qps·duration within 4σ (σ=√n for Poisson).
	n := float64(res.Offered)
	if math.Abs(n-qps) > 4*math.Sqrt(qps) {
		t.Fatalf("offered=%v want ≈%v", n, qps)
	}
	if res.Completed != res.Offered {
		t.Fatalf("completed=%d offered=%d", res.Completed, res.Offered)
	}
}

func TestOpenLoopLatencyIncludesServiceTime(t *testing.T) {
	res := RunOpenLoop(fakeService(2*time.Millisecond), OpenLoopConfig{
		QPS: 200, Duration: 500 * time.Millisecond, Seed: 2,
	})
	if res.Latency.Median < 2*time.Millisecond {
		t.Fatalf("median=%v below service time", res.Latency.Median)
	}
	if res.Latency.Median > 20*time.Millisecond {
		t.Fatalf("median=%v implausibly high at low load", res.Latency.Median)
	}
}

// TestNoCoordinatedOmission is the paper's methodological point: when the
// server stalls, an open-loop tester must charge the queueing delay to the
// server.  A serial server at 2× its capacity must show latencies far above
// the bare service time.
func TestNoCoordinatedOmission(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load-generation measurement")
	}
	// Serial server: 5ms service → 200 QPS capacity.  Offer 400 QPS.
	res := RunOpenLoop(serialService(5*time.Millisecond), OpenLoopConfig{
		QPS: 400, Duration: 500 * time.Millisecond, Seed: 3,
		DrainTimeout: 5 * time.Second,
	})
	// Under 2× overload for 500ms, the queue at the end is ≈100 deep;
	// tail latency must reflect queueing (≫ 5ms).
	if res.Latency.P99 < 50*time.Millisecond {
		t.Fatalf("p99=%v does not reflect queueing (coordinated omission?)", res.Latency.P99)
	}
	// And median must exceed several service times too.
	if res.Latency.Median < 10*time.Millisecond {
		t.Fatalf("median=%v too low under 2x overload", res.Latency.Median)
	}
}

func TestOpenLoopCaptureRaw(t *testing.T) {
	res := RunOpenLoop(fakeService(time.Millisecond), OpenLoopConfig{
		QPS: 500, Duration: 200 * time.Millisecond, Seed: 4, CaptureRaw: true,
	})
	if uint64(len(res.Raw)) != res.Completed {
		t.Fatalf("raw=%d completed=%d", len(res.Raw), res.Completed)
	}
	for _, d := range res.Raw {
		if d < 0 {
			t.Fatal("negative latency sample")
		}
	}
}

func TestOpenLoopErrorsCounted(t *testing.T) {
	res := RunOpenLoop(failingService(4), OpenLoopConfig{
		QPS: 1000, Duration: 300 * time.Millisecond, Seed: 5,
	})
	if res.Errors == 0 {
		t.Fatal("no errors recorded")
	}
	if res.Completed+res.Errors != res.Offered {
		t.Fatalf("completed+errors=%d offered=%d", res.Completed+res.Errors, res.Offered)
	}
}

func TestOpenLoopDrainTimeoutDropsStragglers(t *testing.T) {
	// A service that never completes some requests.
	var n atomic.Int64
	blackhole := func(done chan *rpc.Call) *rpc.Call {
		call := &rpc.Call{Done: done}
		if n.Add(1)%2 == 0 {
			go func() {
				call.Received = time.Now()
				done <- call
			}()
		}
		// Odd requests never complete.
		return call
	}
	res := RunOpenLoop(blackhole, OpenLoopConfig{
		QPS: 200, Duration: 200 * time.Millisecond, Seed: 6,
		DrainTimeout: 200 * time.Millisecond,
	})
	if res.Dropped == 0 {
		t.Fatal("no dropped requests despite blackhole")
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
}

// TestInterArrivalExponential validates the Poisson process shape directly:
// exponential gaps have mean 1/λ and CV ≈ 1.
func TestInterArrivalExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const lambda = 1000.0
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := rng.ExpFloat64() / lambda
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1/lambda)/(1/lambda) > 0.05 {
		t.Fatalf("mean gap=%v want %v", mean, 1/lambda)
	}
	cv := std / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("CV=%v want ≈1 (exponential)", cv)
	}
}
