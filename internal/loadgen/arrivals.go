package loadgen

import (
	"math/rand"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/stats"
)

// This file is the one open-loop engine every load shape drives: a steady
// Poisson run, a multi-phase schedule (flash crowd, diurnal staircase,
// square-wave bursts), and a recorded-trace replay are all just different
// arrival processes fed to RunProcess.  Before this refactor the
// constant-QPS path and the phased path each had their own
// dispatcher/collector pair; now the coordinated-omission-safe measurement
// (latency clocked from the *scheduled* arrival) exists exactly once.

// Arrival is one scheduled request of an open-loop run: its offset from the
// start of the run and the phase it is attributed to.
type Arrival struct {
	Offset time.Duration
	Phase  int
}

// ArrivalFunc yields the i-th arrival of a load process.  It is called with
// strictly increasing i from a single dispatcher goroutine (implementations
// may keep state); returning ok=false ends the offered-load window.
type ArrivalFunc func(i int) (a Arrival, ok bool)

// ProcessConfig parameterizes one RunProcess run.
type ProcessConfig struct {
	// Phases labels the arrival process's phases for attribution; arrivals
	// carry an index into it.  Empty means one anonymous phase.
	Phases []LoadPhase
	// Window is the offered-load interval AchievedQPS is computed over
	// (default: the sum of phase durations).
	Window time.Duration
	// DrainTimeout bounds the post-window wait for stragglers (default 10s).
	DrainTimeout time.Duration
	// CaptureRaw retains every latency sample for violin rendering.
	CaptureRaw bool
}

// ProcessResult is a RunProcess run's measurement: the run-wide totals plus
// one entry per phase, attributed by where each request was *scheduled*.
type ProcessResult struct {
	Total  OpenLoopResult
	Phases []PhaseResult
}

// PoissonArrivals builds a constant-rate Poisson arrival process over the
// window: exponential inter-arrival gaps at rate qps.
func PoissonArrivals(qps float64, window time.Duration, seed int64) ArrivalFunc {
	rng := rand.New(rand.NewSource(seed))
	var off time.Duration
	return func(int) (Arrival, bool) {
		off += time.Duration(rng.ExpFloat64() / qps * float64(time.Second))
		return Arrival{Offset: off}, off <= window
	}
}

// PhasedArrivals builds a Poisson process whose rate steps through the
// phases consecutively, continuous across boundaries (the overshoot of one
// phase's last gap carries into the next, so the process stays Poisson at
// the seam).  Zero-QPS phases offer nothing but still consume their
// duration.
func PhasedArrivals(phases []LoadPhase, seed int64) ArrivalFunc {
	rng := rand.New(rand.NewSource(seed))
	pi := 0
	var off, phaseEnd time.Duration
	for pi < len(phases) && (phases[pi].QPS <= 0 || phases[pi].Duration <= 0) {
		phaseEnd += phases[pi].Duration
		pi++
	}
	if pi < len(phases) {
		phaseEnd += phases[pi].Duration
	}
	return func(int) (Arrival, bool) {
		for pi < len(phases) {
			gap := time.Duration(rng.ExpFloat64() / phases[pi].QPS * float64(time.Second))
			if off+gap <= phaseEnd {
				off += gap
				return Arrival{Offset: off, Phase: pi}, true
			}
			// The gap crosses the phase boundary: clamp to it and move to
			// the next offering phase.
			off = phaseEnd
			pi++
			for pi < len(phases) && (phases[pi].QPS <= 0 || phases[pi].Duration <= 0) {
				phaseEnd += phases[pi].Duration
				off = phaseEnd
				pi++
			}
			if pi < len(phases) {
				phaseEnd += phases[pi].Duration
			}
		}
		return Arrival{}, false
	}
}

// ReplayArrivals re-offers a recorded arrival process (e.g.
// trace.ArrivalOffsets of an exported trace), scaled by speed.
func ReplayArrivals(offsets []time.Duration, speed float64) ArrivalFunc {
	if speed <= 0 {
		speed = 1
	}
	return func(i int) (Arrival, bool) {
		if i >= len(offsets) {
			return Arrival{}, false
		}
		return Arrival{Offset: time.Duration(float64(offsets[i]) / speed)}, true
	}
}

// PhaseWindow sums the phases' durations — the offered-load window of a
// phased process.
func PhaseWindow(phases []LoadPhase) time.Duration {
	var w time.Duration
	for _, p := range phases {
		w += p.Duration
	}
	return w
}

// RunProcess drives issue with the given arrival process, measuring each
// request from its scheduled arrival time (coordinated-omission safe: the
// queueing delay a slow server causes is charged to the server, never
// silently removed from the offered load).
func RunProcess(issue IssueFunc, next ArrivalFunc, cfg ProcessConfig) ProcessResult {
	drainTimeout := cfg.DrainTimeout
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	phases := cfg.Phases
	if len(phases) == 0 {
		phases = []LoadPhase{{Name: "run", Duration: cfg.Window}}
	}
	window := cfg.Window
	if window <= 0 {
		window = PhaseWindow(phases)
	}
	if window <= 0 {
		window = time.Second
	}
	nphase := len(phases)
	res := ProcessResult{Phases: make([]PhaseResult, nphase)}
	hists := make([]*stats.Histogram, nphase)
	for i := range res.Phases {
		res.Phases[i].Phase = phases[i]
		hists[i] = stats.NewHistogram()
	}
	totalHist := stats.NewHistogram()
	var raw []time.Duration
	out := &res.Total

	type schedRecord struct {
		call  *rpc.Call
		sched time.Time
		phase int
	}
	// Sized so neither the transport reader nor the dispatcher blocks.
	done := make(chan *rpc.Call, 4096)
	records := make(chan schedRecord, 4096)

	// Dispatcher: schedule arrivals, never waiting for responses.
	dispatcherDone := make(chan []uint64, 1)
	go func() {
		offered := make([]uint64, nphase)
		start := time.Now()
		for i := 0; ; i++ {
			a, ok := next(i)
			if !ok {
				break
			}
			ph := a.Phase
			if ph < 0 || ph >= nphase {
				ph = nphase - 1
			}
			at := start.Add(a.Offset)
			if d := time.Until(at); d > 0 {
				time.Sleep(d)
			}
			// Even if we are issuing late, the latency clock runs from the
			// scheduled instant.
			call := issue(done)
			records <- schedRecord{call: call, sched: at, phase: ph}
			offered[ph]++
		}
		dispatcherDone <- offered
	}()

	// Collector: match completions to scheduled times.  A completion can
	// beat its record through the channels, so unmatched completions are
	// parked until the record arrives.
	sched := make(map[*rpc.Call]schedRecord)
	orphans := make(map[*rpc.Call]time.Time)
	var resolved uint64
	record := func(rec schedRecord, fallback time.Time) {
		resolved++
		pr := &res.Phases[rec.phase]
		if rec.call.Err != nil {
			if rpc.IsOverload(rec.call.Err) {
				pr.Shed++
				out.Shed++
			} else {
				pr.Errors++
				out.Errors++
			}
			return
		}
		end := rec.call.Received
		if end.IsZero() {
			end = fallback
		}
		lat := end.Sub(rec.sched)
		hists[rec.phase].Record(lat)
		totalHist.Record(lat)
		if cfg.CaptureRaw {
			raw = append(raw, lat)
		}
		pr.Completed++
		out.Completed++
	}

	dispatchDoneSeen := false
	var drainDeadline time.Time
	for {
		if dispatchDoneSeen && resolved >= out.Offered {
			break
		}
		var timer *time.Timer
		var timeout <-chan time.Time
		if dispatchDoneSeen {
			if time.Now().After(drainDeadline) {
				break
			}
			timer = time.NewTimer(50 * time.Millisecond)
			timeout = timer.C
		}
		select {
		case offered := <-dispatcherDone:
			dispatchDoneSeen = true
			drainDeadline = time.Now().Add(drainTimeout)
			for i, n := range offered {
				res.Phases[i].Offered = n
				out.Offered += n
			}
			dispatcherDone = nil
		case rec := <-records:
			if at, ok := orphans[rec.call]; ok {
				delete(orphans, rec.call)
				record(rec, at)
			} else {
				sched[rec.call] = rec
			}
		case call := <-done:
			if rec, ok := sched[call]; ok {
				delete(sched, call)
				record(rec, time.Now())
			} else {
				orphans[call] = time.Now()
			}
		case <-timeout:
			// Loop to re-check the drain deadline.
		}
		if timer != nil {
			timer.Stop()
		}
	}

	// Whatever never resolved is dropped; attribute what the scheduled-call
	// table still knows about to its phase.
	out.Dropped = out.Offered - resolved
	for _, rec := range sched {
		res.Phases[rec.phase].Dropped++
	}
	for i := range res.Phases {
		res.Phases[i].Latency = hists[i].Snapshot()
	}
	out.AchievedQPS = float64(out.Completed) / window.Seconds()
	out.Latency = totalHist.Snapshot()
	out.Raw = raw
	return res
}
