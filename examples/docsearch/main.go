// Document search: the set-algebra-on-posting-lists workload of §III-C.
//
// The example deploys Set Algebra over a Zipf-worded corpus, runs multi-term
// conjunctive queries, shows how result counts shrink as terms are added,
// and probes the service's saturation throughput with the closed-loop
// generator.
//
//	go run ./examples/docsearch
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"musuite"
)

func main() {
	corpus := musuite.NewDocCorpus(musuite.DocCorpusConfig{
		Docs: 3000, VocabSize: 6000, MeanDocLen: 90, Seed: 5,
	})
	cluster, err := musuite.StartSetAlgebraCluster(musuite.SetAlgebraClusterConfig{
		Corpus:    corpus,
		Shards:    4,
		StopTerms: 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := musuite.DialSetAlgebra(cluster.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Conjunctive narrowing: adding terms shrinks the result set.  Pick
	// moderately common terms that survived every shard's stop list so
	// the narrowing is visible.
	var base []int
	for w := 0; w < corpus.VocabSize && len(base) < 4; w++ {
		usable := true
		for _, sh := range cluster.Shards {
			if sh.Index.IsStopWord(w) || sh.Index.Postings(w) == nil {
				usable = false
				break
			}
		}
		if usable {
			base = append(base, w)
		}
	}
	fmt.Println("conjunctive query narrowing:")
	for i := 1; i <= len(base); i++ {
		docs, err := client.Search(base[:i])
		if err != nil {
			log.Fatal(err)
		}
		words := make([]string, i)
		for j, w := range base[:i] {
			words[j] = corpus.Word(w)
		}
		fmt.Printf("  %-36s → %5d documents\n", strings.Join(words, " AND "), len(docs))
	}

	// Run the paper's query set shape: 10K synthetic queries, ≤10 words.
	queries := corpus.Queries(10000, 10, 29)
	var next atomic.Uint64 // closed-loop workers issue concurrently
	issue := func(done chan *musuite.RPCCall) *musuite.RPCCall {
		q := queries[next.Add(1)%uint64(len(queries))]
		return client.Go(q, done)
	}
	// Saturation probe (closed loop), as in Fig. 9.
	sat := musuite.FindSaturation(issue, musuite.SaturationConfig{
		Window: time.Second, MaxConcurrency: 16,
	})
	fmt.Printf("\nsaturation throughput: %.0f QPS (closed-loop concurrency %d)\n",
		sat.Throughput, sat.Concurrency)
	for _, s := range sat.Steps {
		fmt.Printf("  concurrency %-4d → %7.0f QPS\n", s.Concurrency, s.Throughput)
	}
}
