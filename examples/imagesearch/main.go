// Image similarity search: the "find similar images" workload the paper's
// introduction motivates (§III-A), measured the way the paper measures it.
//
// The example deploys HDSearch, drives it with the open-loop Poisson load
// generator at increasing loads, and reports the latency-vs-load trade-off
// plus the accuracy score against brute-force ground truth.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"
	"time"

	"musuite"
)

func main() {
	corpus := musuite.NewImageCorpus(musuite.ImageCorpusConfig{
		N: 4000, Dim: 64, Clusters: 12, Seed: 7,
	})
	cluster, err := musuite.StartHDSearchCluster(musuite.HDSearchClusterConfig{
		Corpus: corpus,
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := musuite.DialHDSearch(cluster.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Accuracy check first (the paper tunes LSH to ≥93%).
	queries := corpus.Queries(100, 11)
	var accSum float32
	for _, q := range queries {
		ns, err := client.Search(q, 1)
		if err != nil {
			log.Fatal(err)
		}
		accSum += cluster.Accuracy(q, ns)
	}
	fmt.Printf("mean accuracy over %d queries: %.4f (target ≥ 0.93)\n\n", len(queries), accSum/float32(len(queries)))

	// Latency vs load, open loop (coordinated-omission safe).
	stream := corpus.Queries(2048, 13)
	var next int
	issue := func(done chan *musuite.RPCCall) *musuite.RPCCall {
		q := stream[next%len(stream)]
		next++
		return client.Go(q, 5, done)
	}

	fmt.Println("open-loop latency vs offered load:")
	fmt.Printf("  %-10s %-10s %-12s %-12s %-12s\n", "QPS", "achieved", "p50", "p99", "p99.9")
	for _, qps := range []float64{50, 200, 800} {
		res := musuite.RunOpenLoop(issue, musuite.OpenLoopConfig{
			QPS: qps, Duration: 2 * time.Second, Seed: int64(qps),
		})
		fmt.Printf("  %-10g %-10.0f %-12v %-12v %-12v\n",
			qps, res.AchievedQPS, res.Latency.Median, res.Latency.P99, res.Latency.P999)
	}
}
