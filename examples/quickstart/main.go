// Quickstart: deploy one μSuite service in-process and query it.
//
// This is the smallest end-to-end program: an HDSearch cluster (4 leaf
// shards + LSH mid-tier over loopback TCP), one front-end client, one
// similarity query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"musuite"
)

func main() {
	// 1. A synthetic image corpus standing in for Open Images feature
	//    vectors (deterministic from the seed).
	corpus := musuite.NewImageCorpus(musuite.ImageCorpusConfig{
		N: 5000, Dim: 64, Clusters: 12, Seed: 1,
	})

	// 2. Launch the three-tier deployment: 4 leaves + mid-tier.
	cluster, err := musuite.StartHDSearchCluster(musuite.HDSearchClusterConfig{
		Corpus: corpus,
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("HDSearch cluster up at %s (LSH index: %d entries in %d tables)\n",
		cluster.Addr, cluster.Index.Entries, cluster.Index.Tables)

	// 3. Dial the front-end client and search.
	client, err := musuite.DialHDSearch(cluster.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	query := corpus.Queries(1, 42)[0]
	neighbors, err := client.Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("5 nearest neighbors of the query image:")
	for i, n := range neighbors {
		fmt.Printf("  %d. image #%d  (squared distance %.4f)\n", i+1, n.PointID, n.Distance)
	}
	fmt.Printf("accuracy vs brute-force ground truth: %.4f (paper floor: 0.93)\n",
		cluster.Accuracy(query, neighbors))
}
