// Key-value protocol routing: the McRouter-style workload of §III-B.
//
// The example deploys Router over six memcached-style leaves with 3-way
// replication, drives a YCSB-A (50/50 get/set, Zipf keys) trace through it,
// shows where replicas landed, and demonstrates fault tolerance by killing
// a leaf mid-workload.
//
//	go run ./examples/kvrouting
package main

import (
	"fmt"
	"log"

	"musuite"
)

func main() {
	cluster, err := musuite.StartRouterCluster(musuite.RouterClusterConfig{
		Leaves:   6,
		Replicas: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := musuite.DialRouter(cluster.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Drive a YCSB-A style trace.
	trace := musuite.NewKVTrace(musuite.KVTraceConfig{
		Keys: 500, ValueSize: 64, GetFraction: 0.5, Seed: 3,
	})
	for _, op := range trace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			log.Fatal(err)
		}
	}
	var gets, hits, sets int
	for _, op := range trace.Ops(2000) {
		if op.Kind == musuite.KVGet {
			gets++
			if _, found, err := client.Get(op.Key); err != nil {
				log.Fatal(err)
			} else if found {
				hits++
			}
		} else {
			sets++
			if err := client.Set(op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("YCSB-A trace: %d gets (%d hits), %d sets\n", gets, hits, sets)

	// Show replica placement for a key.
	key := "tweet:000000000042"
	client.Set(key, []byte("hello replication"))
	fmt.Printf("key %q replicated on leaves %v\n", key, cluster.LeafHolding(key))

	// Per-leaf load balance from the replicated sets.
	fmt.Println("per-leaf item counts (replication spreads load):")
	for i, st := range cluster.StoreStats() {
		fmt.Printf("  leaf %d: %4d items, %5d hits\n", i, st.Items, st.Hits)
	}

	// Fault tolerance: kill one replica of our key; the remaining two
	// keep serving a share of the rotated gets.
	victims := cluster.LeafHolding(key)
	cluster.KillLeaf(victims[0])
	fmt.Printf("killed leaf %d; re-reading %q:\n", victims[0], key)
	ok, fail := 0, 0
	for i := 0; i < 9; i++ {
		if v, found, err := client.Get(key); err == nil && found && string(v) == "hello replication" {
			ok++
		} else {
			fail++
		}
	}
	fmt.Printf("  %d reads served by surviving replicas, %d hit the dead leaf\n", ok, fail)
}
