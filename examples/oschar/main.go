// OS/network characterization: the paper's actual experiment, in miniature.
//
// The example attaches a telemetry probe and a request tracer to a Set
// Algebra mid-tier, drives it with open-loop Poisson load at two rates, and
// prints (1) the syscall-per-query profile, (2) the OS-overhead classes,
// (3) the per-request stage attribution — the data behind Figs. 11–18.
//
//	go run ./examples/oschar
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"musuite"
)

func main() {
	probe := musuite.NewProbe()
	tracer := musuite.NewTracer(1, 128)

	corpus := musuite.NewDocCorpus(musuite.DocCorpusConfig{
		Docs: 1500, VocabSize: 4000, MeanDocLen: 70, Seed: 12,
	})
	cluster, err := musuite.StartSetAlgebraCluster(musuite.SetAlgebraClusterConfig{
		Corpus: corpus,
		Shards: 4,
		MidTier: musuite.MidTierOptions{
			Workers:         2,
			ResponseThreads: 2,
			Probe:           probe,
			Tracer:          tracer,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := musuite.DialSetAlgebra(cluster.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	queries := corpus.Queries(4096, 10, 13)
	var next atomic.Uint64
	issue := func(done chan *musuite.RPCCall) *musuite.RPCCall {
		return client.Go(queries[next.Add(1)%uint64(len(queries))], done)
	}

	for _, qps := range []float64{50, 800} {
		probe.Reset()
		before := probe.Snapshot()
		res := musuite.RunOpenLoop(issue, musuite.OpenLoopConfig{
			QPS: qps, Duration: 2 * time.Second, Seed: int64(qps),
		})
		delta := probe.Snapshot().Delta(before)

		fmt.Printf("=== load %g QPS (completed %d, p50 %v, p99 %v) ===\n",
			qps, res.Completed, res.Latency.Median, res.Latency.P99)

		fmt.Println("syscall proxies per query (Figs. 11-14 analog):")
		for _, sys := range musuite.Syscalls() {
			if n := delta.Syscalls[sys]; n > 0 {
				fmt.Printf("  %-12s %.2f\n", sys, float64(n)/float64(res.Completed))
			}
		}

		fmt.Println("OS overhead classes, p99 (Figs. 15-18 analog):")
		for _, o := range musuite.Overheads() {
			if snap := probe.OverheadSnapshot(o); snap.Count > 0 {
				fmt.Printf("  %-11s %v\n", o, snap.P99)
			}
		}
		fmt.Printf("context switches: %d, lock handoffs (HITM proxy): %d\n\n",
			delta.ContextSwitch, delta.HITM)
	}

	fmt.Print(tracer.Report())
	fmt.Println()
	fmt.Println("three sampled request traces:")
	for _, tr := range tracer.Recent(3) {
		fmt.Printf("  %s\n", tr.Breakdown())
	}
}
