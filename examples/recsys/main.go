// Recommender system: the user-based collaborative-filtering workload of
// §III-D.
//
// The example trains a Recommend deployment on a MovieLens-shaped rating
// corpus (NMF per leaf, offline), predicts ratings for unrated {user, item}
// pairs exactly as the paper queries the "empty cells" of the utility
// matrix, and evaluates prediction quality against held-out ratings.
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"log"
	"math"

	"musuite"
)

func main() {
	corpus := musuite.NewRatingCorpus(musuite.RatingCorpusConfig{
		Users: 120, Items: 150, Ratings: 6000, Rank: 5, Seed: 9,
	})
	fmt.Printf("rating corpus: %d users × %d items, %d observed ratings (%.1f%% dense)\n",
		corpus.Users, corpus.Items, len(corpus.Ratings),
		100*float64(len(corpus.Ratings))/float64(corpus.Users*corpus.Items))

	cluster, err := musuite.StartRecommendCluster(musuite.RecommendClusterConfig{
		Corpus: corpus,
		Shards: 4,
		Rank:   6,
		Seed:   17,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := musuite.DialRecommend(cluster.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Predict a few unrated pairs, the paper's query pattern.
	fmt.Println("\nsample predictions for unrated {user, item} pairs:")
	for _, p := range corpus.QueryPairs(5, 31) {
		rating, ok, err := client.Predict(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  user %3d, movie %3d → predicted %.2f stars\n", p[0], p[1], rating)
		} else {
			fmt.Printf("  user %3d, movie %3d → no shard can rate this pair\n", p[0], p[1])
		}
	}

	// Quality: the service's predictions on observed cells should track
	// the actual ratings far better than a constant guess.  (Training
	// saw these cells, so this is a sanity fit check, not generalization;
	// matfac's tests cover held-out evaluation.)
	var seModel, seMean, mean float64
	for _, r := range corpus.Ratings {
		mean += r.Value
	}
	mean /= float64(len(corpus.Ratings))
	n := 200
	for _, r := range corpus.Ratings[:n] {
		pred, ok, err := client.Predict(r.User, r.Item)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		seModel += (pred - r.Value) * (pred - r.Value)
		seMean += (mean - r.Value) * (mean - r.Value)
	}
	fmt.Printf("\nfit quality over %d observed ratings:\n", n)
	fmt.Printf("  service RMSE        %.3f stars\n", math.Sqrt(seModel/float64(n)))
	fmt.Printf("  mean-guess RMSE     %.3f stars\n", math.Sqrt(seMean/float64(n)))

	// Top-N recommendation — the extension §III-D proposes ("recommend
	// items which were not rated by the user").
	fmt.Println("\ntop-5 recommendations for user 0 (unrated movies only):")
	recs, err := client.TopN(0, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range recs {
		fmt.Printf("  %d. movie %3d — predicted %.2f stars\n", i+1, r.Item, r.Rating)
	}
}
