// Property tests: a batching mid-tier must be semantically invisible.  For
// each service, a batched cluster (MaxBatch 8) and an unbatched twin serve
// the same seeded corpus; quick-generated query bursts are issued
// concurrently against the batched deployment — so carrier RPCs actually
// coalesce — and every merged result must be identical to the unbatched
// cluster's answer.
package musuite_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/services/recommend"
	"musuite/internal/services/router"
	"musuite/internal/services/setalgebra"
)

// equivBatch is the policy under test: deep enough to coalesce a whole
// burst, with a flush delay wide enough that concurrent arrivals meet in
// one carrier.
var equivBatch = core.BatchPolicy{MaxBatch: 8, Delay: 300 * time.Microsecond}

// equivQuickConf bounds each property's iteration count: every trial is a
// multi-RPC burst, so modest counts already cover many batch compositions.
var equivQuickConf = &quick.Config{MaxCount: 12}

// assertBatched fails the test when the batched cluster never coalesced:
// an equivalence pass over a degenerate (effectively unbatched) deployment
// would prove nothing.
func assertBatched(t *testing.T, midTierAddr string) {
	t.Helper()
	c, err := rpc.Dial(midTierAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := core.QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchCarriers == 0 || st.BatchMembers <= st.BatchCarriers {
		t.Fatalf("batched cluster stats carriers=%d members=%d: bursts never coalesced",
			st.BatchCarriers, st.BatchMembers)
	}
}

func TestBatchEquivalenceHDSearch(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 600, Dim: 16, Clusters: 8, Seed: 7,
	})
	queries := corpus.Queries(128, 7)
	start := func(batch core.BatchPolicy) *hdsearch.Client {
		cl, err := hdsearch.StartCluster(hdsearch.ClusterConfig{
			Corpus:  corpus,
			Shards:  3,
			MidTier: core.Options{Workers: 4, Batch: batch},
			Leaf:    core.LeafOptions{Workers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := hdsearch.DialClient(cl.Addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		if batch.MaxBatch > 1 {
			t.Cleanup(func() { assertBatched(t, cl.Addr) })
		}
		return client
	}
	plain := start(core.BatchPolicy{})
	batched := start(equivBatch)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		burst := make([]int, 8)
		for i := range burst {
			burst[i] = rng.Intn(len(queries))
		}
		done := make(chan *rpc.Call, len(burst))
		for _, q := range burst {
			batched.Go(queries[q], 5, done)
		}
		for range burst {
			if call := <-done; call.Err != nil {
				t.Logf("batched search: %v", call.Err)
				return false
			}
		}
		// The calls in a burst may complete in any order; re-issue each
		// query synchronously on both clusters and compare pointwise.
		for _, q := range burst {
			want, err := plain.Search(queries[q], 5)
			if err != nil {
				t.Logf("plain search: %v", err)
				return false
			}
			got, err := batched.Search(queries[q], 5)
			if err != nil {
				t.Logf("batched search: %v", err)
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i].PointID != want[i].PointID || got[i].Distance != want[i].Distance {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, equivQuickConf); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEquivalenceRouter(t *testing.T) {
	start := func(batch core.BatchPolicy) *router.Client {
		cl, err := router.StartCluster(router.ClusterConfig{
			Leaves:   4,
			Replicas: 2,
			MidTier:  core.Options{Workers: 4, Batch: batch},
			Leaf:     core.LeafOptions{Workers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := router.DialClient(cl.Addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		if batch.MaxBatch > 1 {
			t.Cleanup(func() { assertBatched(t, cl.Addr) })
		}
		return client
	}
	plain := start(core.BatchPolicy{})
	batched := start(equivBatch)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]string, 16)
		for i := range keys {
			// Sets are applied in the same sequential order on both
			// clusters, so overlapping keys stay deterministic.
			keys[i] = string([]byte{'k', byte('a' + rng.Intn(6)), byte('a' + rng.Intn(6))})
			val := []byte{byte(rng.Intn(256)), byte(i)}
			if err := plain.Set(keys[i], val); err != nil {
				t.Logf("plain set: %v", err)
				return false
			}
			if err := batched.Set(keys[i], val); err != nil {
				t.Logf("batched set: %v", err)
				return false
			}
		}
		// Concurrent get burst on the batched cluster: reads coalesce
		// into multiget carriers.
		done := make(chan *rpc.Call, len(keys))
		for _, k := range keys {
			batched.GoGet(k, done)
		}
		for range keys {
			if call := <-done; call.Err != nil {
				t.Logf("batched get: %v", call.Err)
				return false
			}
		}
		for _, k := range keys {
			wantVal, wantFound, err := plain.Get(k)
			if err != nil {
				t.Logf("plain get: %v", err)
				return false
			}
			gotVal, gotFound, err := batched.Get(k)
			if err != nil {
				t.Logf("batched get: %v", err)
				return false
			}
			if gotFound != wantFound || string(gotVal) != string(wantVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, equivQuickConf); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEquivalenceSetAlgebra(t *testing.T) {
	corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: 500, VocabSize: 1500, Seed: 11,
	})
	queries := corpus.Queries(128, 4, 11)
	start := func(batch core.BatchPolicy) *setalgebra.Client {
		cl, err := setalgebra.StartCluster(setalgebra.ClusterConfig{
			Corpus:    corpus,
			Shards:    3,
			StopTerms: 5,
			MidTier:   core.Options{Workers: 4, Batch: batch},
			Leaf:      core.LeafOptions{Workers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := setalgebra.DialClient(cl.Addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		if batch.MaxBatch > 1 {
			t.Cleanup(func() { assertBatched(t, cl.Addr) })
		}
		return client
	}
	plain := start(core.BatchPolicy{})
	batched := start(equivBatch)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		burst := make([]int, 8)
		for i := range burst {
			burst[i] = rng.Intn(len(queries))
		}
		done := make(chan *rpc.Call, len(burst))
		for _, q := range burst {
			batched.Go(queries[q], done)
		}
		for range burst {
			if call := <-done; call.Err != nil {
				t.Logf("batched search: %v", call.Err)
				return false
			}
		}
		for _, q := range burst {
			want, err := plain.Search(queries[q])
			if err != nil {
				t.Logf("plain search: %v", err)
				return false
			}
			got, err := batched.Search(queries[q])
			if err != nil {
				t.Logf("batched search: %v", err)
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, equivQuickConf); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEquivalenceRecommend(t *testing.T) {
	const users, items = 40, 50
	corpus := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: users, Items: items, Ratings: 1200, Seed: 13,
	})
	start := func(batch core.BatchPolicy) *recommend.Client {
		cl, err := recommend.StartCluster(recommend.ClusterConfig{
			Corpus:  corpus,
			Shards:  2,
			Seed:    13,
			MidTier: core.Options{Workers: 4, Batch: batch},
			Leaf:    core.LeafOptions{Workers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := recommend.DialClient(cl.Addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		if batch.MaxBatch > 1 {
			t.Cleanup(func() { assertBatched(t, cl.Addr) })
		}
		return client
	}
	plain := start(core.BatchPolicy{})
	batched := start(equivBatch)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type pair struct{ user, item int }
		burst := make([]pair, 8)
		for i := range burst {
			burst[i] = pair{rng.Intn(users), rng.Intn(items)}
		}
		done := make(chan *rpc.Call, len(burst))
		for _, p := range burst {
			batched.Go(p.user, p.item, done)
		}
		for range burst {
			if call := <-done; call.Err != nil {
				t.Logf("batched predict: %v", call.Err)
				return false
			}
		}
		for _, p := range burst {
			wantScore, wantOK, err := plain.Predict(p.user, p.item)
			if err != nil {
				t.Logf("plain predict: %v", err)
				return false
			}
			gotScore, gotOK, err := batched.Predict(p.user, p.item)
			if err != nil {
				t.Logf("batched predict: %v", err)
				return false
			}
			// Scalar and vectorized leaves share one arithmetic path, so
			// the predictions must agree to the bit, not within epsilon.
			if gotOK != wantOK || math.Float64bits(gotScore) != math.Float64bits(wantScore) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, equivQuickConf); err != nil {
		t.Fatal(err)
	}
}
