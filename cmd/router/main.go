// Command router runs one tier of the Router service as its own process.
//
//	router -role leaf -addr :7201
//	router -role midtier -addr :7200 -leaves h1:7201,...,h16:7216 -replicas 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"musuite/internal/cluster"
	"musuite/internal/cmdutil"
	"musuite/internal/core"
	"musuite/internal/memcache"
	"musuite/internal/services/router"
	"musuite/internal/trace"
)

func main() {
	var (
		role     = flag.String("role", "", "leaf | midtier")
		addr     = flag.String("addr", "127.0.0.1:0", "listen address")
		leaves   = flag.String("leaves", "", "midtier: comma-separated leaf addresses")
		replicas = flag.Int("replicas", 3, "midtier: replication pool size")
		maxBytes = flag.Int64("max-bytes", 0, "leaf: store byte budget (0 = unlimited)")
		workers  = flag.Int("workers", 4, "worker pool size")

		hedgePct    = flag.Float64("hedge-pct", 0, "midtier: hedge leaf calls slower than this latency percentile (0 disables, e.g. 0.95)")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "midtier: fixed hedge delay (overrides -hedge-pct)")
		retryBudget = flag.Float64("retry-budget", 0, "midtier: hedge/retry budget as a fraction of primary traffic (0 = default 0.1)")
		leafRetries = flag.Int("leaf-retries", 0, "midtier: retries per failed leaf call")
		maxBatch    = flag.Int("max-batch", 0, "midtier: coalesce up to this many leaf calls per batched RPC (≤1 disables)")
		batchDelay  = flag.Duration("batch-delay", 0, "midtier: fixed batch flush delay (0 tracks the leaf-latency digest)")

		writeCoalesce = flag.Bool("write-coalesce", true, "coalesce concurrent response/request frames into batched write syscalls")
		pendingShards = flag.Int("pending-shards", 0, "midtier: pending-table shards per leaf connection (0 = default 8, rounded to a power of two)")

		routing   = flag.String("routing", "modulo", "midtier: key placement strategy: modulo | jump (jump keeps placements stable through resizes)")
		adminAddr = flag.String("admin", "", "midtier: topology admin listener (empty disables; \":0\" picks a port)")

		traceOut = flag.String("trace-out", "", "write this tier's recorded spans (JSONL) on shutdown")

		admit     = cmdutil.RegisterAdmitFlags()
		autoscale = cmdutil.RegisterAutoscaleFlags()
	)
	flag.Parse()

	var spans *trace.Recorder
	if *traceOut != "" {
		spans = trace.NewRecorder("router-"+*role, trace.DefaultRecorderCap)
	}

	tail := core.TailPolicy{
		HedgePercentile:  *hedgePct,
		HedgeDelay:       *hedgeDelay,
		RetryBudgetRatio: *retryBudget,
		LeafRetries:      *leafRetries,
	}
	batch := core.BatchPolicy{MaxBatch: *maxBatch, Delay: *batchDelay}
	strategy, err := cluster.ParseRouting(*routing)
	if err != nil {
		fatal(err)
	}

	switch *role {
	case "leaf":
		store := memcache.New(memcache.Config{MaxBytes: *maxBytes})
		leaf := router.NewLeaf(store, &core.LeafOptions{
			Workers:              *workers,
			DisableWriteCoalesce: !*writeCoalesce,
			Spans:                spans,
		})
		bound, err := leaf.Start(*addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("router leaf (memcached-style store) on %s\n", bound)
		waitForSignal()
		leaf.Close()

	case "midtier":
		if *leaves == "" {
			fatal("midtier requires -leaves")
		}
		// Router replicates at the data level (-replicas spreads each key
		// across stores), so leaves stay single-replica transport groups;
		// hedges and retries re-issue on the same store, which is safe for
		// its idempotent get/set ops.
		mt := router.NewMidTier(router.MidTierConfig{
			Replicas: *replicas,
			Core: core.Options{
				Workers:              *workers,
				Tail:                 tail,
				Batch:                batch,
				PendingShards:        *pendingShards,
				Routing:              strategy,
				DisableWriteCoalesce: !*writeCoalesce,
				Spans:                spans,
				Admit:                admit.Policy(),
				Classify:             admit.Classifier(),
			},
		})
		if err := mt.ConnectLeaves(strings.Split(*leaves, ",")); err != nil {
			fatal(err)
		}
		bound, err := mt.Start(*addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("router mid-tier on %s (%d leaves, %d replicas)\n",
			bound, mt.NumLeaves(), *replicas)
		if *adminAddr != "" {
			adm, adminBound, err := cluster.ServeAdmin(mt.Topology(), *adminAddr)
			if err != nil {
				fatal(err)
			}
			defer adm.Close()
			fmt.Printf("router topology admin on %s\n", adminBound)
		}
		scaler, err := autoscale.StartAutoscaler(mt)
		if err != nil {
			fatal(err)
		}
		waitForSignal()
		if scaler != nil {
			scaler.Stop()
		}
		mt.Close()

	default:
		fatal("-role must be leaf or midtier")
	}

	if err := trace.FlushFile(*traceOut, spans); err != nil {
		fatal(err)
	}
	if spans != nil {
		fmt.Printf("router: wrote %d spans to %s\n", spans.Len(), *traceOut)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "router:", v)
	os.Exit(1)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
