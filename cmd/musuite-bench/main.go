// Command musuite-bench regenerates the paper's evaluation: Table II and
// Figs. 9–19, plus the §VII framework ablation.
//
// Usage:
//
//	musuite-bench -experiment all
//	musuite-bench -experiment fig9 -scale small
//	musuite-bench -experiment fig10 -services HDSearch,Router -window 5s
//	musuite-bench -experiment fig13 # Set Algebra syscall breakdown only
//	musuite-bench -experiment ablation -load 200
//	musuite-bench -experiment scenario -topo examples/cascade.yaml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"musuite/internal/bench"
	"musuite/internal/cluster"
	"musuite/internal/cmdutil"
	"musuite/internal/core"
	"musuite/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"tableII | fig9 | fig10 | fig11 | fig12 | fig13 | fig14 | fig15 | fig16 | fig17 | fig18 | fig19 | ablation | threadpool | flashcrowd | trace | indexcmp | resize | overload | scenario | all")
		scaleName = flag.String("scale", "small", "small | paper")
		services  = flag.String("services", strings.Join(bench.ServiceNames, ","),
			"comma-separated service subset")
		window = flag.Duration("window", 0, "override per-load measurement window")
		load   = flag.Float64("load", 0, "ablation load (default: middle configured load)")
		trials = flag.Int("trials", 0, "override trial count")
		outDir = flag.String("out", "", "directory to also write per-figure TSV data files (experiment=all)")

		replicas   = flag.Int("replicas", 0, "leaf replicas per shard (HDSearch/SetAlgebra/Recommend; 0 = 1)")
		hedgePct   = flag.Float64("hedge-pct", 0, "hedge leaf calls slower than this latency percentile (0 disables, e.g. 0.95)")
		hedgeDelay = flag.Duration("hedge-delay", 0, "fixed hedge delay (overrides -hedge-pct)")
		maxBatch   = flag.Int("max-batch", 0, "coalesce up to this many leaf calls per batched RPC (≤1 disables)")
		batchDelay = flag.Duration("batch-delay", 0, "fixed batch flush delay (0 tracks the leaf-latency digest)")

		writeCoalesce = flag.Bool("write-coalesce", true, "coalesce concurrent frames into batched write syscalls on both tiers")
		pendingShards = flag.Int("pending-shards", 0, "pending-table shards per leaf connection (0 = default 8, rounded to a power of two)")
		routing       = flag.String("routing", "modulo", "mid-tier key placement strategy: modulo | jump (jump keeps placements stable through resizes)")
		leafPar       = flag.Int("leaf-parallelism", 0, "worker goroutines per leaf kernel scan (0 = NumCPU, 1 = serial)")
		scalarKernels = flag.Bool("scalar-kernels", false, "pin leaves to the reference scalar kernels (ablation baseline for the SoA engine)")

		recallFloor = flag.Float64("recall-floor", 0, "indexcmp: fail (non-zero exit) if any index kind's best recall@10 is below this floor (0 disables)")

		admitLimit    = flag.Int("admit-limit", 0, "arm the mid-tier's adaptive admission controller with this max concurrency ceiling (0 = off; overload experiment defaults it on)")
		admitDeadline = flag.Duration("admit-deadline", 0, "per-request budget for deadline-aware shedding (0 = off)")
		admitTol      = flag.Float64("admit-tolerance", 0, "AIMD latency tolerance over the EWMA floor (0 = default 2.0)")

		traceSample = flag.Int("trace-sample", 0, "record end-to-end spans for 1-in-N requests instead of running -experiment (0 = off)")
		traceOut    = flag.String("trace-out", "", "with -trace-sample: also write the recorded spans (JSONL) here")
		traceReplay = flag.String("trace-replay", "", "replay a recorded trace file's arrival process instead of running -experiment (service inferred from the spans)")
		replaySpeed = flag.Float64("replay-speed", 1, "with -trace-replay: replay clock scale (2 = twice the recorded rate)")

		recoveryFloor = flag.Float64("scenario-recovery", bench.DefaultRecoveryFloor,
			"scenario: final-phase goodput must recover this fraction of the first phase's (0 disables the gate)")
	)
	annFlags := cmdutil.RegisterANNFlags()
	topoFlags := cmdutil.RegisterTopoFlags()
	flag.Parse()

	strategy, err := cluster.ParseRouting(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musuite-bench:", err)
		os.Exit(2)
	}

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.SmallScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *window > 0 {
		scale.Window = *window
	}
	if *replicas > 0 {
		scale.LeafReplicas = *replicas
	}
	mode := bench.FrameworkMode{
		Tail: core.TailPolicy{
			HedgePercentile: *hedgePct,
			HedgeDelay:      *hedgeDelay,
		},
		Batch:                core.BatchPolicy{MaxBatch: *maxBatch, Delay: *batchDelay},
		Routing:              strategy,
		PendingShards:        *pendingShards,
		DisableWriteCoalesce: !*writeCoalesce,
		LeafParallelism:      *leafPar,
		ScalarKernels:        *scalarKernels,
		Admit: core.AdmitPolicy{
			MaxInflight: *admitLimit,
			Deadline:    *admitDeadline,
			Tolerance:   *admitTol,
		},
		Index: annFlags.Kind(),
		ANN:   annFlags.Config(),
	}
	if *trials > 0 {
		scale.Trials = *trials
	}
	svcList := parseServices(*services)
	if len(svcList) == 0 {
		fmt.Fprintln(os.Stderr, "no valid services selected")
		os.Exit(2)
	}

	var err2 error
	switch {
	case *experiment == "scenario":
		err2 = runScenario(topoFlags, *recoveryFloor)
	case *traceReplay != "":
		err2 = runTraceReplay(*traceReplay, scale, mode, *replaySpeed)
	case *traceSample > 0:
		err2 = runTraceRecord(scale, mode, svcList[0], *load, *traceSample, *traceOut)
	default:
		err2 = run(*experiment, scale, mode, svcList, *load, *outDir, *recallFloor)
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, "musuite-bench:", err2)
		os.Exit(1)
	}
}

// runScenario drives a declarative topology spec through its load shape
// and timed degradation events, gating on the scenario acceptance
// criteria: zero untyped errors and post-degradation goodput recovery.
func runScenario(f *cmdutil.TopoFlags, recoveryFloor float64) error {
	if f.Path() == "" {
		return fmt.Errorf("-experiment scenario requires -topo <spec.yaml>")
	}
	spec, err := f.LoadSpec()
	if err != nil {
		return err
	}
	res, err := bench.RunScenario(spec, f.RunOptions())
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderScenario(spec, res))
	if v := bench.ScenarioViolations(res, recoveryFloor); len(v) > 0 {
		return fmt.Errorf("scenario failed acceptance:\n  %s", strings.Join(v, "\n  "))
	}
	fmt.Println("(scenario acceptance: zero untyped errors, goodput recovered)")
	return nil
}

// runTraceRecord deploys one service, offers an open-loop load with 1-in-N
// span sampling, and reports the critical-path breakdown of the recorded
// traces (optionally exporting them for traceview or replay).
func runTraceRecord(scale bench.Scale, mode bench.FrameworkMode, service string, load float64, sample int, out string) error {
	if load <= 0 {
		load = scale.Loads[len(scale.Loads)/2]
	}
	spans, res, err := bench.TraceRun(service, scale, mode, load, scale.Window, sample)
	if err != nil {
		return err
	}
	fmt.Printf("%s @ %g QPS for %v, tracing 1 in %d requests:\n", service, load, scale.Window, sample)
	fmt.Printf("  offered=%d completed=%d errors=%d achieved=%.0f QPS\n",
		res.Offered, res.Completed, res.Errors, res.AchievedQPS)
	fmt.Print(trace.Summarize(trace.BuildTrees(spans)).String())
	if out != "" {
		if err := trace.WriteFile(out, spans); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans to %s\n", len(spans), out)
	}
	return nil
}

// runTraceReplay re-offers a recorded trace's arrival process against a
// fresh deployment of the service the spans came from.
func runTraceReplay(path string, scale bench.Scale, mode bench.FrameworkMode, speed float64) error {
	spans, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	service, ok := bench.ServiceForTrace(spans)
	if !ok {
		return fmt.Errorf("%s: cannot infer a service from the span names", path)
	}
	res, err := bench.ReplayRun(service, scale, mode, spans, speed)
	if err != nil {
		return err
	}
	fmt.Printf("replay %s: %d recorded arrivals at %gx speed:\n",
		service, res.Offered, speed)
	fmt.Printf("  offered=%d completed=%d errors=%d dropped=%d achieved=%.0f QPS\n",
		res.Offered, res.Completed, res.Errors, res.Dropped, res.AchievedQPS)
	fmt.Printf("  latency: %s\n", res.Latency)
	return nil
}

func parseServices(csv string) []string {
	known := make(map[string]bool)
	for _, s := range bench.ServiceNames {
		known[strings.ToLower(s)] = true
	}
	var out []string
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		for _, name := range bench.ServiceNames {
			if strings.EqualFold(s, name) {
				out = append(out, name)
			}
		}
	}
	return out
}

// figureService maps the per-service syscall/overhead figures to their
// subject: Fig 11/15 HDSearch, 12/16 Router, 13/17 SetAlgebra, 14/18
// Recommend.
func figureService(fig int) string {
	switch fig {
	case 11, 15:
		return "HDSearch"
	case 12, 16:
		return "Router"
	case 13, 17:
		return "SetAlgebra"
	case 14, 18:
		return "Recommend"
	}
	return ""
}

func run(experiment string, scale bench.Scale, mode bench.FrameworkMode, services []string, load float64, outDir string, recallFloor float64) error {
	start := time.Now()
	defer func() { fmt.Printf("\n(total experiment time: %v)\n", time.Since(start).Round(time.Millisecond)) }()

	switch experiment {
	case "tableII":
		fmt.Print(bench.RenderTableII(bench.Host()))
		return nil
	case "fig9":
		rows, err := bench.Fig9(scale, services)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFig9(rows))
		return nil
	case "fig10", "fig19":
		points, err := bench.Characterize(scale, services, mode)
		if err != nil {
			return err
		}
		if experiment == "fig10" {
			fmt.Print(bench.RenderFig10(points))
		} else {
			fmt.Print(bench.RenderFig19(points))
		}
		return nil
	case "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18":
		var fig int
		fmt.Sscanf(experiment, "fig%d", &fig)
		svc := figureService(fig)
		points, err := bench.Characterize(scale, []string{svc}, mode)
		if err != nil {
			return err
		}
		if fig <= 14 {
			fmt.Print(bench.RenderFig11to14(points))
		} else {
			fmt.Print(bench.RenderFig15to18(points))
		}
		return nil
	case "ablation":
		if load <= 0 {
			load = scale.Loads[len(scale.Loads)/2]
		}
		rows, err := bench.Ablation(scale, services, load)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderAblation(rows))
		return nil
	case "threadpool":
		if load <= 0 {
			load = scale.Loads[len(scale.Loads)/2]
		}
		rows, err := bench.ThreadPoolSweep(scale, services[0], []int{1, 2, 4, 8, 16}, load)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderThreadPool(rows))
		return nil
	case "indexcmp":
		if load <= 0 {
			load = scale.Loads[len(scale.Loads)/2]
		}
		rows, err := bench.IndexComparison(scale, load)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderIndexComparison(rows))
		if recallFloor > 0 {
			if v := bench.RecallFloorViolations(rows, recallFloor); len(v) > 0 {
				return fmt.Errorf("recall floor violated:\n  %s", strings.Join(v, "\n  "))
			}
			fmt.Printf("(all index kinds meet the %.2f recall@10 floor)\n", recallFloor)
		}
		return nil
	case "trace":
		if load <= 0 {
			load = scale.Loads[len(scale.Loads)/2]
		}
		tracer, err := bench.TraceAttribution(scale, services[0], load)
		if err != nil {
			return err
		}
		fmt.Printf("%s @ %g QPS — ", services[0], load)
		fmt.Print(tracer.Report())
		return nil
	case "resize":
		if load <= 0 {
			load = scale.Loads[0]
		}
		phases, err := bench.Resize(scale, mode, load)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderResize(phases, load))
		return nil
	case "overload":
		res, err := bench.Overload(scale, mode)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderOverload(res))
		if !res.Passed() {
			return fmt.Errorf("overload ramp failed %d acceptance criteria", len(res.Violations))
		}
		return nil
	case "flashcrowd":
		if load <= 0 {
			load = scale.Loads[0]
		}
		results, err := bench.FlashCrowdExperiment(scale, services[0], load, 20)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFlashCrowd(services[0], results))
		return nil
	case "all":
		fmt.Print(bench.RenderTableII(bench.Host()))
		fmt.Println()
		rows, err := bench.Fig9(scale, services)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFig9(rows))
		fmt.Println()
		points, err := bench.Characterize(scale, services, mode)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFig10(points))
		fmt.Println()
		fmt.Print(bench.RenderFig11to14(points))
		fmt.Println()
		fmt.Print(bench.RenderFig15to18(points))
		fmt.Println()
		fmt.Print(bench.RenderFig19(points))
		fmt.Println()
		if load <= 0 {
			load = scale.Loads[len(scale.Loads)/2]
		}
		ab, err := bench.Ablation(scale, services, load)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderAblation(ab))
		if outDir != "" {
			if err := bench.WriteTSV(outDir, rows, points); err != nil {
				return err
			}
			fmt.Printf("\n(per-figure TSV data written to %s)\n", outDir)
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}
