// Command benchgate turns `go test -bench` output into a benchstat-style
// JSON summary and gates CI on performance regressions.
//
// Parse a benchmark run (typically -count=5 so each metric is a mean over
// repetitions) and write the summary:
//
//	go test -run=NONE -bench='TailFanout|LeafBatching' -count=5 . > bench.txt
//	benchgate -in bench.txt -out BENCH_ci.json
//
// Add -baseline to compare against a committed summary; the exit status is
// non-zero when any lower-is-better metric (ns/op, *-ns, B/op, allocs/op,
// shed-rate) rises by more than -threshold, when any higher-is-better metric
// (*-qps) falls by more than it, or when a baseline benchmark is missing
// from the current run:
//
//	benchgate -in bench.txt -out BENCH_ci.json -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric aggregates one unit's values across -count repetitions.
type Metric struct {
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// Summary is the JSON document: benchmark name → unit → aggregate.
type Summary struct {
	Benchmarks map[string]map[string]Metric `json:"benchmarks"`
}

// benchLine matches one result line: name, iteration count, then
// whitespace-separated value/unit pairs.  The trailing -N GOMAXPROCS suffix
// is stripped from the name so summaries compare across machines.
var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+(.+)$`)

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (Summary, error) {
	type acc struct {
		sum, min, max float64
		n             int
	}
	raw := make(map[string]map[string]*acc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return Summary{}, fmt.Errorf("benchmark %s: odd value/unit field count in %q", name, m[3])
		}
		if raw[name] == nil {
			raw[name] = make(map[string]*acc)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Summary{}, fmt.Errorf("benchmark %s: bad value %q: %v", name, fields[i], err)
			}
			unit := fields[i+1]
			a := raw[name][unit]
			if a == nil {
				a = &acc{min: math.Inf(1), max: math.Inf(-1)}
				raw[name][unit] = a
			}
			a.sum += v
			a.n++
			a.min = math.Min(a.min, v)
			a.max = math.Max(a.max, v)
		}
	}
	if err := sc.Err(); err != nil {
		return Summary{}, err
	}
	if len(raw) == 0 {
		return Summary{}, fmt.Errorf("no benchmark result lines found")
	}
	out := Summary{Benchmarks: make(map[string]map[string]Metric, len(raw))}
	for name, units := range raw {
		out.Benchmarks[name] = make(map[string]Metric, len(units))
		for unit, a := range units {
			out.Benchmarks[name][unit] = Metric{
				Mean:  a.sum / float64(a.n),
				Min:   a.min,
				Max:   a.max,
				Count: a.n,
			}
		}
	}
	return out, nil
}

// lowerIsBetter reports whether a regression in this unit means the value
// went up.  Ratio-style custom metrics (batch-occupancy, median-ratio, …)
// have no universal direction and are recorded but never gated.
func lowerIsBetter(unit string) bool {
	return unit == "ns/op" || unit == "B/op" || unit == "allocs/op" ||
		unit == "shed-rate" || strings.HasSuffix(unit, "-ns")
}

// higherIsBetter marks throughput-style units (goodput-qps, …) where a
// regression means the value went down.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "-qps")
}

// compare prints a comparison table and returns the regressions.
func compare(baseline, current Summary, threshold float64) []string {
	var regressions []string
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-40s %-16s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, name := range names {
		cur, ok := current.Benchmarks[name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from this run", name))
			continue
		}
		units := make([]string, 0, len(baseline.Benchmarks[name]))
		for unit := range baseline.Benchmarks[name] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			base := baseline.Benchmarks[name][unit]
			got, ok := cur[unit]
			if !ok || base.Mean <= 0 {
				continue
			}
			worse := 0.0 // fractional move in the regressing direction
			switch {
			case lowerIsBetter(unit):
				worse = got.Mean/base.Mean - 1
			case higherIsBetter(unit):
				worse = 1 - got.Mean/base.Mean
			default:
				continue
			}
			delta := got.Mean/base.Mean - 1
			marker := ""
			if worse > threshold {
				marker = "  << REGRESSION"
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %.0f -> %.0f (%+.1f%%, threshold %.1f%%)",
					name, unit, base.Mean, got.Mean, delta*100, threshold*100))
			}
			fmt.Printf("%-40s %-16s %14.1f %14.1f %+7.1f%%%s\n",
				name, unit, base.Mean, got.Mean, delta*100, marker)
		}
	}
	return regressions
}

func main() {
	var (
		in        = flag.String("in", "-", "benchmark output to parse (- = stdin)")
		out       = flag.String("out", "", "write the parsed JSON summary here")
		baseline  = flag.String("baseline", "", "baseline JSON summary to gate against")
		threshold = flag.Float64("threshold", 0.15, "allowed mean regression on lower-is-better metrics")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	current, err := parse(src)
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		doc, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fatal(err)
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(current.Benchmarks))
	}

	if *baseline == "" {
		return
	}
	doc, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base Summary
	if err := json.Unmarshal(doc, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", *baseline, err))
	}
	regressions := compare(base, current, *threshold)
	if len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "\nperformance gate FAILED:")
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("\nperformance gate passed")
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "benchgate:", v)
	os.Exit(1)
}
