// Command hdsearch runs one tier of the HDSearch service as its own
// process, enabling the paper's distributed deployment (each microservice on
// dedicated hardware).  Both tiers regenerate the identical corpus from the
// shared seed, so no dataset files need distributing.
//
//	hdsearch -role leaf -addr :7101 -shard 0 -shards 4 -corpus 10000 -dim 128 -seed 1
//	hdsearch -role midtier -addr :7100 -leaves h1:7101,h2:7102,h3:7103,h4:7104 \
//	         -shards 4 -corpus 10000 -dim 128 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"musuite/internal/ann"
	"musuite/internal/cluster"
	"musuite/internal/cmdutil"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/services/hdsearch"
	"musuite/internal/trace"
)

func main() {
	var (
		role    = flag.String("role", "", "leaf | midtier")
		addr    = flag.String("addr", "127.0.0.1:0", "listen address")
		leaves  = flag.String("leaves", "", "midtier: comma-separated leaf addresses")
		shard   = flag.Int("shard", 0, "leaf: shard index")
		shards  = flag.Int("shards", 4, "total leaf shards")
		n       = flag.Int("corpus", 10000, "corpus size")
		dim     = flag.Int("dim", 128, "feature dimensionality")
		seed    = flag.Int64("seed", 1, "dataset seed (must match across tiers)")
		workers = flag.Int("workers", 4, "worker pool size")

		replicas    = flag.Int("replicas", 1, "midtier: leaf replicas per shard (-leaves lists them consecutively)")
		hedgePct    = flag.Float64("hedge-pct", 0, "midtier: hedge leaf calls slower than this latency percentile (0 disables, e.g. 0.95)")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "midtier: fixed hedge delay (overrides -hedge-pct)")
		retryBudget = flag.Float64("retry-budget", 0, "midtier: hedge/retry budget as a fraction of primary traffic (0 = default 0.1)")
		leafRetries = flag.Int("leaf-retries", 0, "midtier: retries per failed leaf call")
		maxBatch    = flag.Int("max-batch", 0, "midtier: coalesce up to this many leaf calls per batched RPC (≤1 disables)")
		batchDelay  = flag.Duration("batch-delay", 0, "midtier: fixed batch flush delay (0 tracks the leaf-latency digest)")

		writeCoalesce = flag.Bool("write-coalesce", true, "coalesce concurrent response/request frames into batched write syscalls")
		pendingShards = flag.Int("pending-shards", 0, "midtier: pending-table shards per leaf connection (0 = default 8, rounded to a power of two)")

		routing   = flag.String("routing", "modulo", "midtier: key placement strategy: modulo | jump (jump keeps placements stable through resizes)")
		adminAddr = flag.String("admin", "", "midtier: topology admin listener (empty disables; \":0\" picks a port)")

		leafPar = flag.Int("leaf-parallelism", 0, "leaf: worker goroutines per kernel scan (0 = NumCPU)")
		scalar  = flag.Bool("scalar-kernels", false, "leaf: use the reference scalar kernels (disables the tuned SoA engine)")

		traceOut = flag.String("trace-out", "", "write this tier's recorded spans (JSONL) on shutdown")

		annFlags  = cmdutil.RegisterANNFlags()
		admit     = cmdutil.RegisterAdmitFlags()
		autoscale = cmdutil.RegisterAutoscaleFlags()
	)
	flag.Parse()

	var spans *trace.Recorder
	if *traceOut != "" {
		spans = trace.NewRecorder("hdsearch-"+*role, trace.DefaultRecorderCap)
	}

	tail := core.TailPolicy{
		HedgePercentile:  *hedgePct,
		HedgeDelay:       *hedgeDelay,
		RetryBudgetRatio: *retryBudget,
		LeafRetries:      *leafRetries,
	}
	batch := core.BatchPolicy{MaxBatch: *maxBatch, Delay: *batchDelay}
	strategy, err := cluster.ParseRouting(*routing)
	if err != nil {
		fatal(err)
	}

	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: *n, Dim: *dim, Clusters: 16, Seed: *seed,
	})
	shardData := hdsearch.ShardCorpus(corpus, *shards)
	kind := annFlags.Kind()

	switch *role {
	case "leaf":
		if *shard < 0 || *shard >= *shards {
			fatal(fmt.Sprintf("shard %d outside 0..%d", *shard, *shards-1))
		}
		if annCfg, ok := hdsearch.LeafANNConfig(kind, annFlags.Config()); ok {
			// Leaf-resident ANN kind: build this shard's index.  The seed
			// namespacing goes through hdsearch.ShardSeed, matching
			// BuildLeafANN, so a distributed deployment reproduces the
			// in-process cluster's indexes byte for byte.
			annCfg.Seed = hdsearch.ShardSeed(*seed, *shard)
			idx, err := ann.BuildKind(shardData[*shard].Store, annCfg)
			if err != nil {
				fatal(err)
			}
			shardData[*shard].ANN = idx
		}
		leaf := hdsearch.NewLeaf(shardData[*shard], &core.LeafOptions{
			Workers:              *workers,
			DisableWriteCoalesce: !*writeCoalesce,
			Spans:                spans,
			Kernel:               kernel.New(kernel.Config{Parallelism: *leafPar, ForceScalar: *scalar}),
		})
		bound, err := leaf.Start(*addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hdsearch leaf shard %d/%d serving %d vectors on %s\n",
			*shard, *shards, shardData[*shard].Store.Len(), bound)
		waitForSignal()
		leaf.Close()

	case "midtier":
		if *leaves == "" {
			fatal("midtier requires -leaves")
		}
		var index hdsearch.CandidateIndex
		if hdsearch.IsLeafANN(kind) {
			// The leaves own the ANN indexes; the mid-tier only routes,
			// broadcasting the query with the breadth (nprobe/efSearch)
			// and rerank knobs.
			index = hdsearch.NewLeafANN(*dim, annFlags.RouterKnob(), annFlags.Rerank())
		} else {
			var err error
			index, err = hdsearch.BuildCandidateIndex(kind, shardData, *seed)
			if err != nil {
				fatal(err)
			}
		}
		mt := hdsearch.NewMidTier(index, &core.Options{
			Workers:              *workers,
			Tail:                 tail,
			Batch:                batch,
			PendingShards:        *pendingShards,
			Routing:              strategy,
			DisableWriteCoalesce: !*writeCoalesce,
			Spans:                spans,
			Admit:                admit.Policy(),
			Classify:             admit.Classifier(),
		})
		groups, err := core.GroupAddrs(strings.Split(*leaves, ","), *replicas)
		if err != nil {
			fatal(err)
		}
		if err := mt.ConnectLeafGroups(groups); err != nil {
			fatal(err)
		}
		bound, err := mt.Start(*addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hdsearch mid-tier on %s (%s index, %d vectors, %d leaves × %d replicas)\n",
			bound, kind, len(corpus.Vectors), mt.NumLeaves(), *replicas)
		if *adminAddr != "" {
			adm, adminBound, err := cluster.ServeAdmin(mt.Topology(), *adminAddr)
			if err != nil {
				fatal(err)
			}
			defer adm.Close()
			fmt.Printf("hdsearch topology admin on %s\n", adminBound)
		}
		scaler, err := autoscale.StartAutoscaler(mt)
		if err != nil {
			fatal(err)
		}
		waitForSignal()
		if scaler != nil {
			scaler.Stop()
		}
		mt.Close()

	default:
		fatal("-role must be leaf or midtier")
	}

	if err := trace.FlushFile(*traceOut, spans); err != nil {
		fatal(err)
	}
	if spans != nil {
		fmt.Printf("hdsearch: wrote %d spans to %s\n", spans.Len(), *traceOut)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "hdsearch:", v)
	os.Exit(1)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
