// Command setalgebra runs one tier of the Set Algebra service as its own
// process.  Both tiers regenerate the identical corpus from the shared seed.
//
//	setalgebra -role leaf -addr :7301 -shard 0 -shards 4 -docs 100000 -seed 1
//	setalgebra -role midtier -addr :7300 -leaves h1:7301,...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"musuite/internal/cluster"
	"musuite/internal/cmdutil"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/services/setalgebra"
	"musuite/internal/trace"
)

func main() {
	var (
		role      = flag.String("role", "", "leaf | midtier")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		leaves    = flag.String("leaves", "", "midtier: comma-separated leaf addresses")
		shard     = flag.Int("shard", 0, "leaf: shard index")
		shards    = flag.Int("shards", 4, "total leaf shards")
		docs      = flag.Int("docs", 10000, "corpus size")
		vocab     = flag.Int("vocab", 20000, "vocabulary size")
		stopTerms = flag.Int("stop-terms", 25, "leaf: stop-list size")
		seed      = flag.Int64("seed", 1, "dataset seed (must match across tiers)")
		workers   = flag.Int("workers", 4, "worker pool size")

		replicas    = flag.Int("replicas", 1, "midtier: leaf replicas per shard (-leaves lists them consecutively)")
		hedgePct    = flag.Float64("hedge-pct", 0, "midtier: hedge leaf calls slower than this latency percentile (0 disables, e.g. 0.95)")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "midtier: fixed hedge delay (overrides -hedge-pct)")
		retryBudget = flag.Float64("retry-budget", 0, "midtier: hedge/retry budget as a fraction of primary traffic (0 = default 0.1)")
		leafRetries = flag.Int("leaf-retries", 0, "midtier: retries per failed leaf call")
		maxBatch    = flag.Int("max-batch", 0, "midtier: coalesce up to this many leaf calls per batched RPC (≤1 disables)")
		batchDelay  = flag.Duration("batch-delay", 0, "midtier: fixed batch flush delay (0 tracks the leaf-latency digest)")

		writeCoalesce = flag.Bool("write-coalesce", true, "coalesce concurrent response/request frames into batched write syscalls")
		pendingShards = flag.Int("pending-shards", 0, "midtier: pending-table shards per leaf connection (0 = default 8, rounded to a power of two)")

		routing   = flag.String("routing", "modulo", "midtier: key placement strategy: modulo | jump (jump keeps placements stable through resizes)")
		adminAddr = flag.String("admin", "", "midtier: topology admin listener (empty disables; \":0\" picks a port)")

		traceOut = flag.String("trace-out", "", "write this tier's recorded spans (JSONL) on shutdown")

		admit     = cmdutil.RegisterAdmitFlags()
		autoscale = cmdutil.RegisterAutoscaleFlags()
	)
	flag.Parse()

	var spans *trace.Recorder
	if *traceOut != "" {
		spans = trace.NewRecorder("setalgebra-"+*role, trace.DefaultRecorderCap)
	}

	tail := core.TailPolicy{
		HedgePercentile:  *hedgePct,
		HedgeDelay:       *hedgeDelay,
		RetryBudgetRatio: *retryBudget,
		LeafRetries:      *leafRetries,
	}
	batch := core.BatchPolicy{MaxBatch: *maxBatch, Delay: *batchDelay}
	strategy, err := cluster.ParseRouting(*routing)
	if err != nil {
		fatal(err)
	}

	switch *role {
	case "leaf":
		if *shard < 0 || *shard >= *shards {
			fatal(fmt.Sprintf("shard %d outside 0..%d", *shard, *shards-1))
		}
		corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
			Docs: *docs, VocabSize: *vocab, Seed: *seed,
		})
		data := setalgebra.ShardCorpus(corpus, *shards, *stopTerms)[*shard]
		leaf := setalgebra.NewLeaf(data, &core.LeafOptions{
			Workers:              *workers,
			DisableWriteCoalesce: !*writeCoalesce,
			Spans:                spans,
		})
		bound, err := leaf.Start(*addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("setalgebra leaf shard %d/%d serving %d docs (%d terms indexed) on %s\n",
			*shard, *shards, data.Index.Docs(), data.Index.Terms(), bound)
		waitForSignal()
		leaf.Close()

	case "midtier":
		if *leaves == "" {
			fatal("midtier requires -leaves")
		}
		mt := setalgebra.NewMidTier(&core.Options{
			Workers:              *workers,
			Tail:                 tail,
			Batch:                batch,
			PendingShards:        *pendingShards,
			Routing:              strategy,
			DisableWriteCoalesce: !*writeCoalesce,
			Spans:                spans,
			Admit:                admit.Policy(),
			Classify:             admit.Classifier(),
		})
		groups, err := core.GroupAddrs(strings.Split(*leaves, ","), *replicas)
		if err != nil {
			fatal(err)
		}
		if err := mt.ConnectLeafGroups(groups); err != nil {
			fatal(err)
		}
		bound, err := mt.Start(*addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("setalgebra mid-tier on %s (%d leaves × %d replicas)\n",
			bound, mt.NumLeaves(), *replicas)
		if *adminAddr != "" {
			adm, adminBound, err := cluster.ServeAdmin(mt.Topology(), *adminAddr)
			if err != nil {
				fatal(err)
			}
			defer adm.Close()
			fmt.Printf("setalgebra topology admin on %s\n", adminBound)
		}
		scaler, err := autoscale.StartAutoscaler(mt)
		if err != nil {
			fatal(err)
		}
		waitForSignal()
		if scaler != nil {
			scaler.Stop()
		}
		mt.Close()

	default:
		fatal("-role must be leaf or midtier")
	}

	if err := trace.FlushFile(*traceOut, spans); err != nil {
		fatal(err)
	}
	if spans != nil {
		fmt.Printf("setalgebra: wrote %d spans to %s\n", spans.Len(), *traceOut)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "setalgebra:", v)
	os.Exit(1)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
