// Command topo deploys a declarative topology spec — any DAG of synthetic
// mid-tiers, cache/store/compute leaves, and registered μSuite services —
// over the mid-tier framework, offers the spec's load shape, and arms its
// timed degradation scenario.
//
// Usage:
//
//	topo -topo examples/social-network.yaml
//	topo -topo examples/hotel-reservation.yaml -topo-qps 300 -topo-duration 10s
//	topo -topo spec.yaml -validate           # parse + validate only
//	topo -topo spec.yaml -scenario=false     # run undisturbed
//
// The exit status is non-zero when the run produced untyped errors or
// unresolved requests: degradation windows may shed load (typed
// backpressure), but must never surface failures of unknown provenance.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"musuite/internal/bench"
	"musuite/internal/cmdutil"
	"musuite/internal/topo"
	"musuite/internal/trace"
)

func main() {
	topoFlags := cmdutil.RegisterTopoFlags()
	validate := flag.Bool("validate", false,
		"parse and validate the spec, print its shape, and exit")
	traceSample := flag.Int("trace-sample", 0,
		"record end-to-end spans for 1-in-N requests across every tier (0 = off)")
	traceOut := flag.String("trace-out", "",
		"with -trace-sample: write the recorded spans (JSONL) here")
	flag.Parse()

	if topoFlags.Path() == "" {
		fmt.Fprintln(os.Stderr, "topo: -topo <spec.yaml> is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := topoFlags.LoadSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topo:", err)
		os.Exit(2)
	}
	if *validate {
		fmt.Print(describe(spec))
		return
	}

	opts := topoFlags.RunOptions()
	var rec *trace.Recorder
	if *traceSample > 0 {
		rec = trace.NewRecorder(spec.Name, 0)
		opts.Build = topo.BuildOptions{Spans: rec, SpanSample: *traceSample}
	}
	res, err := bench.RunScenario(spec, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topo:", err)
		os.Exit(1)
	}
	fmt.Print(bench.RenderScenario(spec, res))
	if rec != nil && *traceOut != "" {
		spans := rec.Snapshot()
		if err := trace.WriteFile(*traceOut, spans); err != nil {
			fmt.Fprintln(os.Stderr, "topo:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d spans to %s\n", len(spans), *traceOut)
	}
	if v := bench.ScenarioViolations(res, 0); len(v) > 0 {
		fmt.Fprintf(os.Stderr, "topo: run failed acceptance:\n  %s\n", strings.Join(v, "\n  "))
		os.Exit(1)
	}
}

// describe summarizes a validated spec: the -validate output.
func describe(spec *topo.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology %q: %d services, entry %s, seed %d\n",
		spec.Name, len(spec.Services), spec.Entry, spec.Seed)
	for _, name := range spec.ServiceNames() {
		svc := spec.Services[name]
		fmt.Fprintf(&b, "  %-16s kind=%-10s shards=%d replicas=%d",
			name, svc.Kind, svc.Shards, svc.Replicas)
		if len(svc.Edges) > 0 {
			var edges []string
			for en, e := range svc.Edges {
				edges = append(edges, fmt.Sprintf("%s->%s", en, e.To))
			}
			sort.Strings(edges)
			fmt.Fprintf(&b, " edges=[%s]", strings.Join(edges, " "))
		}
		b.WriteByte('\n')
	}
	pattern := spec.Load.Pattern
	if pattern == "" {
		pattern = topo.PatternSteady
	}
	fmt.Fprintf(&b, "  load: pattern=%s qps=%g duration=%v\n",
		pattern, spec.Load.QPS, spec.Load.Duration)
	fmt.Fprintf(&b, "  scenario: %d events\n", len(spec.Scenario))
	return b.String()
}
