// Command traceview inspects exported μSuite traces (JSONL span files).
// Multiple input files merge into one span set, so the per-process exports
// of a distributed deployment — the load generator's root spans plus each
// tier's server and attempt spans — reassemble into complete trees.
//
//	traceview trace-loadgen.jsonl trace-mid.jsonl trace-leaf0.jsonl
//	traceview -dump 3 trace.jsonl
//	traceview -check -min-traces 10 -require-note abandoned trace-*.jsonl
//
// With -check, traceview is a CI gate: it exits non-zero unless every trace
// forms one connected tree whose critical-path segments sum to the recorded
// end-to-end latency within -tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"musuite/internal/trace"
)

func main() {
	var (
		check     = flag.Bool("check", false, "validate the traces and exit non-zero on violations")
		tolerance = flag.Duration("tolerance", 0, "check: allowed |critical-path sum − end-to-end| slack per trace")
		minTraces = flag.Int("min-traces", 1, "check: fail unless at least this many connected traces exist")
		notes     = flag.String("require-note", "", "check: comma-separated notes that must each appear on some span (e.g. abandoned,hedge)")
		dump      = flag.Int("dump", 0, "pretty-print the first N trees")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fatal("usage: traceview [flags] trace.jsonl...")
	}

	var spans []trace.Span
	for _, path := range flag.Args() {
		part, err := trace.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		spans = append(spans, part...)
	}
	trees := trace.BuildTrees(spans)

	fmt.Print(trace.Summarize(trees).String())
	for i, t := range trees {
		if i >= *dump {
			break
		}
		dumpTree(t)
	}

	if *check {
		if err := checkTraces(trees, spans, *tolerance, *minTraces, *notes); err != nil {
			fatal(err)
		}
		fmt.Printf("check ok: %d traces validated\n", len(trees))
	}
}

// checkTraces enforces the CI-smoke invariants over the merged span set.
func checkTraces(trees []*trace.Tree, spans []trace.Span, tolerance time.Duration, minTraces int, notes string) error {
	connected := 0
	for _, t := range trees {
		if !t.Connected() {
			return fmt.Errorf("trace %016x is not connected: %d spans, %d roots",
				uint64(t.TraceID), len(t.Spans), len(t.Roots))
		}
		connected++
		path := t.CriticalPath()
		if len(path) == 0 {
			return fmt.Errorf("trace %016x has an empty critical path", uint64(t.TraceID))
		}
		got, want := trace.PathTotal(path), t.EndToEnd()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > tolerance {
			return fmt.Errorf("trace %016x: critical path sums to %v, end-to-end is %v (|diff| %v > tolerance %v)",
				uint64(t.TraceID), got, want, diff, tolerance)
		}
	}
	if connected < minTraces {
		return fmt.Errorf("only %d connected traces, need at least %d", connected, minTraces)
	}
	for _, note := range strings.Split(notes, ",") {
		note = strings.TrimSpace(note)
		if note == "" {
			continue
		}
		found := false
		for i := range spans {
			if spans[i].HasNote(note) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no span carries required note %q", note)
		}
	}
	return nil
}

// dumpTree pretty-prints one trace as an indented tree, children in start
// order, with durations, services, and annotations inline.
func dumpTree(t *trace.Tree) {
	fmt.Printf("\ntrace %016x  e2e=%v  spans=%d\n",
		uint64(t.TraceID), t.EndToEnd().Round(time.Microsecond), len(t.Spans))
	base := int64(0)
	if r := t.Root(); r != nil {
		base = r.Span.Start
	}
	for _, root := range t.Roots {
		dumpNode(root, base, 1)
	}
}

func dumpNode(n *trace.Node, base int64, depth int) {
	s := &n.Span
	line := fmt.Sprintf("%s%-6s %s  +%v %v",
		strings.Repeat("  ", depth), s.Kind, s.Name,
		time.Duration(s.Start-base).Round(time.Microsecond),
		time.Duration(s.Duration).Round(time.Microsecond))
	if s.Service != "" {
		line += "  [" + s.Service + "]"
	}
	if len(s.Notes) > 0 {
		line += "  " + strings.Join(s.Notes, " ")
	}
	if s.Err != "" {
		line += "  err=" + s.Err
	}
	fmt.Println(line)
	for _, c := range n.Children {
		dumpNode(c, base, depth+1)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "traceview:", v)
	os.Exit(1)
}
