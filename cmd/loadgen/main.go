// Command loadgen drives a deployed μSuite mid-tier from separate hardware,
// as the paper's synthetic load generators do.  It supports the closed-loop
// mode (saturation probing) and the open-loop Poisson mode (tail latency),
// generating each service's workload from the same seeds the service tiers
// use.
//
//	loadgen -service hdsearch -target host:7100 -mode saturate
//	loadgen -service router -target host:7200 -mode open -qps 1000 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"musuite/internal/dataset"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/services/recommend"
	"musuite/internal/services/router"
	"musuite/internal/services/setalgebra"
	"musuite/internal/trace"
)

func main() {
	var (
		service  = flag.String("service", "", "hdsearch | router | setalgebra | recommend")
		target   = flag.String("target", "", "mid-tier address")
		mode     = flag.String("mode", "open", "open | closed | saturate")
		qps      = flag.Float64("qps", 1000, "open: offered load")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		conc     = flag.Int("concurrency", 8, "closed: worker count")
		seed     = flag.Int64("seed", 1, "dataset seed (must match the service tiers)")

		// Distributed tracing.
		traceSample = flag.Int("trace-sample", 0, "trace one in N requests end to end (0 = off)")
		traceOut    = flag.String("trace-out", "", "write this side's recorded spans (JSONL) on exit")
		traceReplay = flag.String("trace-replay", "", "open mode: replay the arrival process of this recorded trace file instead of Poisson arrivals")
		replaySpeed = flag.Float64("replay-speed", 1, "replay clock scale (2 = twice the recorded rate)")

		// Dataset shape flags (must match the deployed tiers).
		corpusN = flag.Int("corpus", 10000, "hdsearch corpus size")
		dim     = flag.Int("dim", 128, "hdsearch feature dimensionality")
		keys    = flag.Int("keys", 10000, "router key population")
		valSize = flag.Int("value-size", 128, "router value size")
		docs    = flag.Int("docs", 10000, "setalgebra corpus size")
		vocab   = flag.Int("vocab", 20000, "setalgebra vocabulary")
		users   = flag.Int("users", 1000, "recommend users")
		items   = flag.Int("items", 1700, "recommend items")
		ratings = flag.Int("ratings", 10000, "recommend rating count")
	)
	flag.Parse()
	if *target == "" {
		fatal("-target is required")
	}

	var rec *trace.Recorder
	if *traceSample > 0 {
		rec = trace.NewRecorder("loadgen", trace.DefaultRecorderCap)
	}
	issue, cleanup, err := buildIssuer(*service, *target, issuerConfig{
		seed: *seed, corpusN: *corpusN, dim: *dim, keys: *keys, valSize: *valSize,
		docs: *docs, vocab: *vocab, users: *users, items: *items, ratings: *ratings,
		spans: rec, sample: *traceSample,
	})
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	switch *mode {
	case "open":
		var res loadgen.OpenLoopResult
		if *traceReplay != "" {
			spans, err := trace.ReadFile(*traceReplay)
			if err != nil {
				fatal(err)
			}
			offsets := trace.ArrivalOffsets(spans)
			if len(offsets) == 0 {
				fatal(fmt.Sprintf("%s: no root spans to replay", *traceReplay))
			}
			res = loadgen.RunReplay(issue, loadgen.ReplayConfig{
				Offsets: offsets, Speed: *replaySpeed,
			})
			fmt.Printf("replay %s: %d recorded arrivals at %gx speed:\n", *service, len(offsets), *replaySpeed)
		} else {
			res = loadgen.RunOpenLoop(issue, loadgen.OpenLoopConfig{
				QPS: *qps, Duration: *duration, Seed: *seed,
			})
			fmt.Printf("open-loop %s @ %g QPS for %v:\n", *service, *qps, *duration)
		}
		fmt.Printf("  offered=%d completed=%d shed=%d errors=%d dropped=%d achieved=%.0f QPS\n",
			res.Offered, res.Completed, res.Shed, res.Errors, res.Dropped, res.AchievedQPS)
		fmt.Printf("  latency: %s\n", res.Latency)
	case "closed":
		res := loadgen.RunClosedLoop(issue, loadgen.ClosedLoopConfig{
			Concurrency: *conc, Duration: *duration, Warmup: 8,
		})
		fmt.Printf("closed-loop %s with %d workers for %v:\n", *service, *conc, *duration)
		fmt.Printf("  throughput=%.0f QPS completed=%d errors=%d\n", res.Throughput, res.Completed, res.Errors)
		fmt.Printf("  latency: %s\n", res.Latency)
	case "saturate":
		res := loadgen.FindSaturation(issue, loadgen.SaturationConfig{Window: *duration})
		fmt.Printf("saturation %s: %.0f QPS at concurrency %d\n", *service, res.Throughput, res.Concurrency)
		for _, s := range res.Steps {
			fmt.Printf("  concurrency %-5d → %.0f QPS\n", s.Concurrency, s.Throughput)
		}
	default:
		fatal(fmt.Sprintf("unknown mode %q", *mode))
	}

	if rec != nil && *traceOut != "" {
		if err := trace.WriteFile(*traceOut, rec.Snapshot()); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d spans to %s (%d dropped)\n", rec.Len(), *traceOut, rec.Dropped())
	}
}

type issuerConfig struct {
	seed                                                            int64
	corpusN, dim, keys, valSize, docs, vocab, users, items, ratings int
	// spans/sample arm end-to-end tracing of 1-in-sample requests.
	spans  *trace.Recorder
	sample int
}

// clientOptions attaches the span recorder so the front-end client records
// root client spans for sampled requests.
func (cfg issuerConfig) clientOptions() *rpc.ClientOptions {
	if cfg.spans == nil {
		return nil
	}
	return &rpc.ClientOptions{Spans: cfg.spans}
}

func (cfg issuerConfig) sampler() *trace.Sampler {
	if cfg.spans == nil {
		return nil
	}
	return trace.NewSampler(cfg.sample)
}

func buildIssuer(service, target string, cfg issuerConfig) (loadgen.IssueFunc, func(), error) {
	var next atomic.Uint64
	sampler := cfg.sampler()
	switch service {
	case "hdsearch":
		client, err := hdsearch.DialClient(target, cfg.clientOptions())
		if err != nil {
			return nil, nil, err
		}
		corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
			N: cfg.corpusN, Dim: cfg.dim, Clusters: 16, Seed: cfg.seed,
		})
		queries := corpus.Queries(4096, cfg.seed+100)
		return func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(q, 5, sc, done)
			}
			return client.Go(q, 5, done)
		}, func() { client.Close() }, nil

	case "router":
		client, err := router.DialClient(target, cfg.clientOptions())
		if err != nil {
			return nil, nil, err
		}
		kvtrace := dataset.NewKVTrace(dataset.KVTraceConfig{
			Keys: cfg.keys, ValueSize: cfg.valSize, Seed: cfg.seed + 200,
		})
		for _, op := range kvtrace.WarmupSets() {
			if err := client.Set(op.Key, op.Value); err != nil {
				client.Close()
				return nil, nil, err
			}
		}
		ops := kvtrace.Ops(1 << 14)
		return func(done chan *rpc.Call) *rpc.Call {
			op := ops[next.Add(1)%uint64(len(ops))]
			if sc := sampler.Context(); sc.Sampled() {
				if op.Kind == dataset.KVGet {
					return client.GoGetSpan(op.Key, sc, done)
				}
				return client.GoSetSpan(op.Key, op.Value, sc, done)
			}
			if op.Kind == dataset.KVGet {
				return client.GoGet(op.Key, done)
			}
			return client.GoSet(op.Key, op.Value, done)
		}, func() { client.Close() }, nil

	case "setalgebra":
		client, err := setalgebra.DialClient(target, cfg.clientOptions())
		if err != nil {
			return nil, nil, err
		}
		corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
			Docs: cfg.docs, VocabSize: cfg.vocab, Seed: cfg.seed,
		})
		queries := corpus.Queries(10000, 10, cfg.seed+301)
		return func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(q, sc, done)
			}
			return client.Go(q, done)
		}, func() { client.Close() }, nil

	case "recommend":
		client, err := recommend.DialClient(target, cfg.clientOptions())
		if err != nil {
			return nil, nil, err
		}
		corpus := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
			Users: cfg.users, Items: cfg.items, Ratings: cfg.ratings, Seed: cfg.seed,
		})
		pairs := corpus.QueryPairs(1000, cfg.seed+402)
		return func(done chan *rpc.Call) *rpc.Call {
			p := pairs[next.Add(1)%uint64(len(pairs))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(p[0], p[1], sc, done)
			}
			return client.Go(p[0], p[1], done)
		}, func() { client.Close() }, nil
	}
	return nil, nil, fmt.Errorf("unknown service %q", service)
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "loadgen:", v)
	os.Exit(1)
}
