// Top-level benchmark harness: one testing.B benchmark per paper table and
// figure, so `go test -bench=. -benchmem` regenerates the evaluation's
// headline numbers in benchmark form.  The richer rendition (violins,
// per-load sweeps, full syscall tables) lives in cmd/musuite-bench.
package musuite_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"musuite"
	"musuite/internal/ann"
	"musuite/internal/bench"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/loadgen"
	"musuite/internal/postlist"
	"musuite/internal/rpc"
	"musuite/internal/stats"
	"musuite/internal/telemetry"
	"musuite/internal/vec"
)

// benchScale shrinks datasets so cluster setup stays under a second per
// benchmark while preserving every code path.
func benchScale() musuite.Scale {
	s := musuite.SmallScale()
	s.HDCorpus, s.HDQueries = 1500, 512
	s.RouterKeys = 1000
	s.Docs, s.Vocab = 800, 2400
	s.Users, s.Items, s.Ratings = 50, 60, 1800
	return s
}

// startInstance deploys a service for benchmarking, failing the benchmark on
// error.
func startInstance(b *testing.B, name string, mode musuite.FrameworkMode) *musuite.Instance {
	b.Helper()
	inst, err := musuite.StartService(name, benchScale(), mode)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Close)
	return inst
}

// syncQuery issues one request and waits for it.
func syncQuery(b *testing.B, inst *musuite.Instance, done chan *musuite.RPCCall) {
	inst.Issue(done)
	call := <-done
	if call.Err != nil {
		b.Fatal(call.Err)
	}
}

// --- Fig. 9: saturation throughput ---
// ops/sec under closed-loop parallel drive approximates each service's peak
// sustainable QPS (the paper's Fig. 9 bars).

func benchmarkFig9(b *testing.B, name string) {
	inst := startInstance(b, name, musuite.FrameworkMode{})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		done := make(chan *musuite.RPCCall, 1)
		for pb.Next() {
			inst.Issue(done)
			if call := <-done; call.Err != nil {
				b.Error(call.Err)
				return
			}
		}
	})
}

func BenchmarkFig9SaturationHDSearch(b *testing.B)   { benchmarkFig9(b, "HDSearch") }
func BenchmarkFig9SaturationRouter(b *testing.B)     { benchmarkFig9(b, "Router") }
func BenchmarkFig9SaturationSetAlgebra(b *testing.B) { benchmarkFig9(b, "SetAlgebra") }
func BenchmarkFig9SaturationRecommend(b *testing.B)  { benchmarkFig9(b, "Recommend") }

// --- Fig. 10: end-to-end latency distribution ---
// Sequential queries report per-request latency; p50/p99 surface as custom
// metrics, the two statistics the paper's violins highlight.

func benchmarkFig10(b *testing.B, name string) {
	inst := startInstance(b, name, musuite.FrameworkMode{})
	done := make(chan *musuite.RPCCall, 1)
	hist := stats.NewHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		syncQuery(b, inst, done)
		hist.Record(time.Since(start))
	}
	b.ReportMetric(float64(hist.Quantile(0.5)), "p50-ns")
	b.ReportMetric(float64(hist.Quantile(0.99)), "p99-ns")
}

func BenchmarkFig10LatencyHDSearch(b *testing.B)   { benchmarkFig10(b, "HDSearch") }
func BenchmarkFig10LatencyRouter(b *testing.B)     { benchmarkFig10(b, "Router") }
func BenchmarkFig10LatencySetAlgebra(b *testing.B) { benchmarkFig10(b, "SetAlgebra") }
func BenchmarkFig10LatencyRecommend(b *testing.B)  { benchmarkFig10(b, "Recommend") }

// --- Figs. 11–14: syscall invocations per query ---
// The futex/query and sendmsg/query custom metrics reproduce the figures'
// dominant bars (Fig. 11 HDSearch, 12 Router, 13 SetAlgebra, 14 Recommend).

func benchmarkFig11to14(b *testing.B, name string) {
	inst := startInstance(b, name, musuite.FrameworkMode{})
	done := make(chan *musuite.RPCCall, 1)
	inst.Probe.Reset()
	before := inst.Probe.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syncQuery(b, inst, done)
	}
	b.StopTimer()
	delta := inst.Probe.Snapshot().Delta(before)
	n := float64(b.N)
	b.ReportMetric(float64(delta.Syscalls[telemetry.SysFutex])/n, "futex/query")
	b.ReportMetric(float64(delta.Syscalls[telemetry.SysSendmsg])/n, "sendmsg/query")
	b.ReportMetric(float64(delta.Syscalls[telemetry.SysRecvmsg])/n, "recvmsg/query")
	b.ReportMetric(float64(delta.Syscalls[telemetry.SysEpollPwait])/n, "epoll/query")
}

func BenchmarkFig11SyscallsHDSearch(b *testing.B)   { benchmarkFig11to14(b, "HDSearch") }
func BenchmarkFig12SyscallsRouter(b *testing.B)     { benchmarkFig11to14(b, "Router") }
func BenchmarkFig13SyscallsSetAlgebra(b *testing.B) { benchmarkFig11to14(b, "SetAlgebra") }
func BenchmarkFig14SyscallsRecommend(b *testing.B)  { benchmarkFig11to14(b, "Recommend") }

// --- Figs. 15–18: OS overhead breakdown ---
// Custom metrics report the Active-Exe (wakeup→run) and total-Net p99,
// whose ratio is the paper's headline scheduler-influence number.

func benchmarkFig15to18(b *testing.B, name string) {
	inst := startInstance(b, name, musuite.FrameworkMode{})
	done := make(chan *musuite.RPCCall, 1)
	inst.Probe.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syncQuery(b, inst, done)
	}
	b.StopTimer()
	ae := inst.Probe.OverheadQuantile(telemetry.OverheadActiveExe, 0.99)
	net := inst.Probe.OverheadQuantile(telemetry.OverheadNet, 0.99)
	b.ReportMetric(float64(ae), "ActiveExe-p99-ns")
	b.ReportMetric(float64(net), "Net-p99-ns")
	if net > 0 {
		b.ReportMetric(float64(ae)/float64(net)*100, "ActiveExe-share-%")
	}
}

func BenchmarkFig15OverheadsHDSearch(b *testing.B)   { benchmarkFig15to18(b, "HDSearch") }
func BenchmarkFig16OverheadsRouter(b *testing.B)     { benchmarkFig15to18(b, "Router") }
func BenchmarkFig17OverheadsSetAlgebra(b *testing.B) { benchmarkFig15to18(b, "SetAlgebra") }
func BenchmarkFig18OverheadsRecommend(b *testing.B)  { benchmarkFig15to18(b, "Recommend") }

// --- Fig. 19: context switches and contention ---

func benchmarkFig19(b *testing.B, name string) {
	inst := startInstance(b, name, musuite.FrameworkMode{})
	done := make(chan *musuite.RPCCall, 1)
	inst.Probe.Reset()
	before := inst.Probe.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syncQuery(b, inst, done)
	}
	b.StopTimer()
	delta := inst.Probe.Snapshot().Delta(before)
	n := float64(b.N)
	b.ReportMetric(float64(delta.ContextSwitch)/n, "CS/query")
	b.ReportMetric(float64(delta.HITM)/n, "HITM/query")
}

func BenchmarkFig19ContentionHDSearch(b *testing.B)   { benchmarkFig19(b, "HDSearch") }
func BenchmarkFig19ContentionRouter(b *testing.B)     { benchmarkFig19(b, "Router") }
func BenchmarkFig19ContentionSetAlgebra(b *testing.B) { benchmarkFig19(b, "SetAlgebra") }
func BenchmarkFig19ContentionRecommend(b *testing.B)  { benchmarkFig19(b, "Recommend") }

// --- §VII ablations: blocking-vs-polling and dispatch-vs-in-line ---

func benchmarkAblation(b *testing.B, mode musuite.FrameworkMode) {
	inst := startInstance(b, "Router", mode)
	done := make(chan *musuite.RPCCall, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syncQuery(b, inst, done)
	}
}

func BenchmarkAblationDispatchBlocking(b *testing.B) {
	benchmarkAblation(b, musuite.FrameworkMode{Dispatch: musuite.Dispatched, Wait: musuite.WaitBlocking})
}

func BenchmarkAblationDispatchPolling(b *testing.B) {
	benchmarkAblation(b, musuite.FrameworkMode{Dispatch: musuite.Dispatched, Wait: musuite.WaitPolling})
}

func BenchmarkAblationInline(b *testing.B) {
	benchmarkAblation(b, musuite.FrameworkMode{Dispatch: musuite.Inline, Wait: musuite.WaitBlocking})
}

// --- Table II analog ---
// Not a measurement; recorded here so `-bench .` output carries the host
// description alongside the numbers.

func BenchmarkTableIIHostInfo(b *testing.B) {
	h := bench.Host()
	b.ReportMetric(float64(h.CPUs), "cpus")
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%s %s/%s %d cpus", h.GoVersion, h.OS, h.Arch, h.CPUs)
	}
}

// --- §VI-B claim: median latency inflation at low load ---
// Runs two short open-loop windows and reports the low/mid median ratio
// (the paper reports up to 1.45×).

func BenchmarkSec6BLowLoadMedianInflation(b *testing.B) {
	inst := startInstance(b, "SetAlgebra", musuite.FrameworkMode{})
	median := func(qps float64) time.Duration {
		res := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
			QPS: qps, Duration: 1500 * time.Millisecond, Seed: 42,
		})
		return res.Latency.Median
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := median(40)
		mid := median(400)
		if mid > 0 {
			b.ReportMetric(float64(lo)/float64(mid), "median-ratio")
		}
	}
}

// --- Tail tolerance: hedged requests vs an intermittently slow leaf ---
// A 3-shard × 2-replica fan-out where one replica stalls 2ms on every 8th
// request.  The Hedged variant duplicates calls stuck past the tracked p95
// onto the shard's other replica; p99-ns is the metric to compare.

func benchmarkTailFanout(b *testing.B, tail musuite.TailPolicy) {
	groups := make([][]string, 3)
	for s := range groups {
		for r := 0; r < 2; r++ {
			var n atomic.Uint64
			stall := s == 0 && r == 1
			leaf := core.NewLeaf(func(method string, payload []byte) ([]byte, error) {
				if stall && n.Add(1)%8 == 0 {
					time.Sleep(2 * time.Millisecond)
				}
				return payload, nil
			}, &core.LeafOptions{Workers: 4})
			addr, err := leaf.Start("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(leaf.Close)
			groups[s] = append(groups[s], addr)
		}
	}
	mt := core.NewMidTier(func(ctx *core.Ctx) {
		ctx.FanoutAll("work", ctx.Req.Payload, func(results []core.LeafResult) {
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
			}
			ctx.Reply([]byte("ok"))
		})
	}, &core.Options{Workers: 4, Tail: tail})
	if err := mt.ConnectLeafGroups(groups); err != nil {
		b.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(mt.Close)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := c.Call("q", []byte("x")); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
}

func BenchmarkTailFanoutNoHedge(b *testing.B) {
	benchmarkTailFanout(b, musuite.TailPolicy{})
}

// --- Cross-request leaf batching: amortized per-RPC overhead ---
// A 2-shard fan-out driven by many concurrent clients.  With batching the
// mid-tier coalesces the concurrent leaf calls bound for each shard into
// carrier RPCs, amortizing framing, syscall, and dispatch costs; ns/op is
// the throughput comparison and p99-ns guards the latency side of the
// trade.  batch-occupancy reports members per carrier actually achieved.

func benchmarkLeafBatching(b *testing.B, batch musuite.BatchPolicy) {
	groups := make([][]string, 2)
	for s := range groups {
		leaf := core.NewLeaf(func(method string, payload []byte) ([]byte, error) {
			return payload, nil
		}, &core.LeafOptions{Workers: 4})
		addr, err := leaf.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(leaf.Close)
		groups[s] = []string{addr}
	}
	mt := core.NewMidTier(func(ctx *core.Ctx) {
		ctx.FanoutAll("work", ctx.Req.Payload, func(results []core.LeafResult) {
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
			}
			ctx.Reply([]byte("ok"))
		})
	}, &core.Options{Workers: 4, Batch: batch})
	if err := mt.ConnectLeafGroups(groups); err != nil {
		b.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(mt.Close)

	var mu sync.Mutex
	lat := make([]time.Duration, 0, b.N)
	b.SetParallelism(64) // keep well over MaxBatch requests in flight so size, not deadline, flushes
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := rpc.Dial(addr, nil)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		local := make([]time.Duration, 0, 512)
		done := make(chan *rpc.Call, 1)
		for pb.Next() {
			start := time.Now()
			c.Go("q", []byte("payload-abcdef"), nil, done)
			if call := <-done; call.Err != nil {
				b.Error(call.Err)
				return
			}
			local = append(local, time.Since(start))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
	sc, err := rpc.Dial(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	st, err := core.QueryStats(sc)
	if err != nil {
		b.Fatal(err)
	}
	if st.BatchCarriers > 0 {
		b.ReportMetric(float64(st.BatchMembers)/float64(st.BatchCarriers), "batch-occupancy")
	}
}

func BenchmarkLeafBatching(b *testing.B) {
	b.Run("batch=1", func(b *testing.B) {
		benchmarkLeafBatching(b, musuite.BatchPolicy{})
	})
	b.Run("batch=16", func(b *testing.B) {
		benchmarkLeafBatching(b, musuite.BatchPolicy{MaxBatch: 16})
	})
}

func BenchmarkTailFanoutHedged(b *testing.B) {
	benchmarkTailFanout(b, musuite.TailPolicy{
		HedgePercentile: 0.95,
		HedgeMinDelay:   500 * time.Microsecond,
	})
}

// --- Hot-path allocation budget ---
// One warmed client against an echo leaf, run under -benchmem.  The client
// half of the path is allocation-free in steady state (pinned exactly by
// rpc's TestClientSteadyStateAllocFree); what remains in allocs/op is the
// server-side per-request envelope, so this benchmark is the budget the
// gate holds the whole round trip to.

func BenchmarkHotPathAllocs(b *testing.B) {
	leaf := core.NewLeaf(func(method string, payload []byte) ([]byte, error) {
		return payload, nil
	}, &core.LeafOptions{Workers: 2})
	addr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(leaf.Close)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })

	payload := []byte("hot-path-payload")
	done := make(chan *rpc.Call, 1)
	roundTrip := func() {
		c.Go("q", payload, nil, done)
		call := <-done
		if call.Err != nil {
			b.Fatal(call.Err)
		}
		call.Release()
	}
	for i := 0; i < 200; i++ {
		roundTrip() // fill the call, buffer, and encoder pools first
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

// --- Leaf compute kernels ---
// The tentpole microbenchmarks the gate holds: a single-query full-shard
// scan through the SoA store's norm-trick kernel vs the pre-engine scalar
// path, streaming top-k selection vs reference select, and the dense-range
// bitset posting-list intersection vs the galloping kernel.

// leafScanCorpus builds the benchmark shard once: 100k points × 64 dims,
// both as a kernel store and as the []vec.Vector layout the pre-engine path
// scanned.
func leafScanCorpus() (*kernel.Store, []vec.Vector, []float32) {
	const n, dim = 100_000, 64
	r := rand.New(rand.NewSource(7))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	s, err := kernel.FromFlat(data, dim)
	if err != nil {
		panic(err)
	}
	vecs := make([]vec.Vector, n)
	for i := range vecs {
		vecs[i] = vec.Vector(s.Row(i))
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	return s, vecs, q
}

func BenchmarkLeafScan(b *testing.B) {
	s, vecs, q := leafScanCorpus()
	const k = 10
	b.Run("engine", func(b *testing.B) {
		eng := musuite.NewKernel(musuite.KernelConfig{})
		var dst []knn.Neighbor
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = eng.Scan(s, q, k, dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepr", func(b *testing.B) {
		// The pre-engine leaf computation: per-point diff-squared distance
		// into the heap-based reference selection.
		for i := 0; i < b.N; i++ {
			if got := knn.BruteForce(vec.Vector(q), vecs, k); len(got) != k {
				b.Fatal("short result")
			}
		}
	})
}

func BenchmarkTopK(b *testing.B) {
	const n, k = 100_000, 10
	r := rand.New(rand.NewSource(11))
	cands := make([]knn.Neighbor, n)
	for i := range cands {
		cands[i] = knn.Neighbor{ID: uint32(i), Distance: r.Float32()}
	}
	b.Run("stream", func(b *testing.B) {
		top := kernel.NewTopK(k)
		var dst []knn.Neighbor
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			top.Reset(k)
			// The engine's scan idiom: one inline threshold compare
			// rejects almost every candidate without a heap call.
			thr := top.Threshold()
			for _, c := range cands {
				if c.Distance <= thr {
					top.Consider(c.ID, c.Distance)
					thr = top.Threshold()
				}
			}
			dst = top.AppendSorted(dst[:0])
		}
		if len(dst) != k {
			b.Fatal("short result")
		}
	})
	b.Run("select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := knn.Select(cands, k); len(got) != k {
				b.Fatal("short result")
			}
		}
	})
}

func BenchmarkIntersectBitset(b *testing.B) {
	// Dense overlap: two lists covering half of a 64k-document range — the
	// shape the span heuristic routes to the bitset kernel.
	r := rand.New(rand.NewSource(13))
	build := func() *postlist.PostingList {
		ids := make([]uint32, 0, 32_000)
		for id := uint32(0); id < 64_000; id++ {
			if r.Intn(2) == 0 {
				ids = append(ids, id)
			}
		}
		return postlist.New(ids)
	}
	pa, pb := build(), build()
	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := postlist.Intersect2Bitset(pa, pb); got.Len() == 0 {
				b.Fatal("empty intersection")
			}
		}
	})
	b.Run("skip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := postlist.Intersect2Skip(pa, pb); got.Len() == 0 {
				b.Fatal("empty intersection")
			}
		}
	})
}

// --- ANN leaf indexes: IVF candidate generation + compressed scoring ---
// The sub-linear leaf path the gate holds against BenchmarkLeafScan: the
// same 100k × 64 shard size, but drawn from the clustered generator the
// HDSearch corpus uses — IVF's pruning only exists when the data has
// structure, and iid noise has none.  Setup asserts the quality side of
// the trade before the timer starts (recall@10 against the exact engine
// scan, and the PQ compression ratio), so a fast-but-wrong index fails
// the benchmark rather than flattering it.

// annGateData builds the gate shard and query set once, shared across
// -count repetitions and both ANN benchmarks.
var annGateData struct {
	once    sync.Once
	store   *kernel.Store
	queries []vec.Vector
}

func annGateCorpus(b *testing.B) (*kernel.Store, []vec.Vector) {
	annGateData.once.Do(func() {
		const n, dim, clusters = 100_000, 64, 64
		corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
			N: n, Dim: dim, Clusters: clusters, Seed: 17,
		})
		s, err := kernel.BuildStore(corpus.Vectors)
		if err != nil {
			panic(err)
		}
		annGateData.store = s
		annGateData.queries = corpus.Queries(64, 18)
	})
	return annGateData.store, annGateData.queries
}

// annGateIndexes caches one built index plus its measured recall@10 per
// quantization, so five -count repetitions train k-means once.
var (
	annGateMu      sync.Mutex
	annGateIndexes = map[ann.Quant]*ann.Index{}
	annGateRecall  = map[ann.Quant]float64{}
)

func annGateIndex(b *testing.B, quant ann.Quant) (*ann.Index, float64) {
	store, queries := annGateCorpus(b)
	annGateMu.Lock()
	defer annGateMu.Unlock()
	if idx, ok := annGateIndexes[quant]; ok {
		return idx, annGateRecall[quant]
	}
	// NList matches the generator's cluster count so the coarse quantizer
	// recovers the corpus structure; nprobe stays at the build default (8),
	// so a search scans ~8/64 of the shard plus the re-rank depth.  PQM 16
	// (4-dim subspaces, 16 B/point = 16x compression) keeps ADC distortion
	// under the tight intra-cluster neighbor gaps at this corpus density.
	idx, err := ann.Build(store, ann.Config{
		NList: 256, Rerank: 400, Quant: quant, PQM: 16, Seed: 19,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := musuite.NewKernel(musuite.KernelConfig{})
	const k = 10
	hits, want := 0, 0
	var truth, got []knn.Neighbor
	for _, q := range queries {
		if truth, err = eng.Scan(store, q, k, truth[:0]); err != nil {
			b.Fatal(err)
		}
		if got, err = idx.Search(eng, q, k, 0, 0, got[:0]); err != nil {
			b.Fatal(err)
		}
		in := make(map[uint32]bool, len(got))
		for _, n := range got {
			in[n.ID] = true
		}
		for _, n := range truth {
			want++
			if in[n.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(want)
	annGateIndexes[quant] = idx
	annGateRecall[quant] = recall
	return idx, recall
}

func benchmarkANNScan(b *testing.B, quant ann.Quant, recallFloor float64) {
	idx, recall := annGateIndex(b, quant)
	store, queries := annGateCorpus(b)
	if recall < recallFloor {
		b.Fatalf("recall@10 %.3f below the %.2f gate floor", recall, recallFloor)
	}
	if quant == ann.QuantPQ && idx.CompressedBytes()*4 > store.Bytes() {
		b.Fatalf("pq store %d B exceeds 1/4 of the %d B float32 store",
			idx.CompressedBytes(), store.Bytes())
	}
	eng := musuite.NewKernel(musuite.KernelConfig{})
	var dst []knn.Neighbor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = idx.Search(eng, queries[i%len(queries)], 10, 0, 0, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(dst) != 10 {
		b.Fatal("short result")
	}
	// ResetTimer deletes earlier user metrics, so quality reports go last.
	b.ReportMetric(recall, "recall@10")
	if quant == ann.QuantPQ {
		b.ReportMetric(float64(store.Bytes())/float64(idx.CompressedBytes()), "compression-x")
	}
}

// BenchmarkIVFScan is the headline sub-linear claim: plain IVF (exact
// float32 candidate scoring) must hold ≥0.95 recall@10 while scanning a
// fraction of the shard BenchmarkLeafScan walks in full.
func BenchmarkIVFScan(b *testing.B) { benchmarkANNScan(b, ann.QuantNone, 0.95) }

// BenchmarkPQScan adds the compressed candidate store: ADC lookup-table
// scoring over ≤1/4-size codes (asserted), exact float32 re-rank on top.
func BenchmarkPQScan(b *testing.B) { benchmarkANNScan(b, ann.QuantPQ, 0.85) }

// annGateHNSW caches the gate HNSW graph plus its measured recall@10, so
// -count repetitions build the graph once.
var annGateHNSWData struct {
	once   sync.Once
	idx    *ann.HNSW
	recall float64
	err    error
}

func annGateHNSW(b *testing.B) (*ann.HNSW, float64) {
	store, queries := annGateCorpus(b)
	annGateHNSWData.once.Do(func() {
		// The gate operating point: M 16 / efConstruction 200 (the
		// Malkov-Yashunin defaults) with efSearch pinned at 32 — on this
		// corpus the deterministic build lands recall@10 at 0.967, and the
		// ~32-wide beam over a degree-32 base layer touches only a couple
		// thousand of the 100k rows, keeping a wide margin on the 25x
		// latency gate even when the CI machine runs slow.
		idx, err := ann.BuildHNSW(store, ann.Config{Kind: ann.KindHNSW, EFSearch: 32, Seed: 19})
		if err != nil {
			annGateHNSWData.err = err
			return
		}
		eng := musuite.NewKernel(musuite.KernelConfig{})
		const k = 10
		hits, want := 0, 0
		var truth, got []knn.Neighbor
		for _, q := range queries {
			if truth, err = eng.Scan(store, q, k, truth[:0]); err != nil {
				annGateHNSWData.err = err
				return
			}
			if got, err = idx.Search(eng, q, k, 0, 0, got[:0]); err != nil {
				annGateHNSWData.err = err
				return
			}
			in := make(map[uint32]bool, len(got))
			for _, n := range got {
				in[n.ID] = true
			}
			for _, n := range truth {
				want++
				if in[n.ID] {
					hits++
				}
			}
		}
		annGateHNSWData.idx = idx
		annGateHNSWData.recall = float64(hits) / float64(want)
	})
	if annGateHNSWData.err != nil {
		b.Fatal(annGateHNSWData.err)
	}
	return annGateHNSWData.idx, annGateHNSWData.recall
}

// gatePassLatency times fn once over the gate query set and reports the
// mean per-query latency of that single pass.  The HNSW gate assertions
// compare *ratios* of passes measured back to back: a shared CI core
// suffers steal and contention that inflate absolute latencies by large
// factors, but contention over adjacent windows inflates both sides of a
// ratio together, so the per-pass speedup stays close to the machine's
// real one.  The gate then takes the best ratio across several passes —
// the speedup is a property of the index, and one clean (or uniformly
// loaded) window demonstrates it.
func gatePassLatency(queries []vec.Vector, fn func(q vec.Vector) error) (time.Duration, error) {
	start := time.Now()
	for _, q := range queries {
		if err := fn(q); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(queries)), nil
}

// BenchmarkHNSWScan is the graph-index gate: on the clustered 100k×64
// corpus the traversal must hold recall@10 ≥ 0.95 at a per-query latency
// ≥25× under the brute-force full scan and under the committed IVF gate
// point — all asserted here in setup, so a fast-but-wrong (or
// accurate-but-slow) graph fails the benchmark rather than flattering it.
// The timed loop then feeds the bench gate's regression comparison.
func BenchmarkHNSWScan(b *testing.B) {
	idx, recall := annGateHNSW(b)
	store, queries := annGateCorpus(b)
	if recall < 0.95 {
		b.Fatalf("recall@10 %.3f below the 0.95 gate floor", recall)
	}
	eng := musuite.NewKernel(musuite.KernelConfig{})
	ivf, _ := annGateIndex(b, ann.QuantNone)
	var dst []knn.Neighbor
	scanFn := func(q vec.Vector) error {
		var err error
		dst, err = eng.Scan(store, q, 10, dst[:0])
		return err
	}
	hnswFn := func(q vec.Vector) error {
		var err error
		dst, err = idx.Search(eng, q, 10, 0, 0, dst[:0])
		return err
	}
	ivfFn := func(q vec.Vector) error {
		var err error
		dst, err = ivf.Search(eng, q, 10, 0, 0, dst[:0])
		return err
	}
	const passes = 5
	var scanX, ivfX float64 // best per-pass scan/hnsw and ivf/hnsw ratios
	var hnswLat, scanLat time.Duration
	for p := 0; p < passes; p++ {
		scan, err := gatePassLatency(queries, scanFn)
		if err != nil {
			b.Fatal(err)
		}
		hnsw, err := gatePassLatency(queries, hnswFn)
		if err != nil {
			b.Fatal(err)
		}
		ivfL, err := gatePassLatency(queries, ivfFn)
		if err != nil {
			b.Fatal(err)
		}
		if x := float64(scan) / float64(hnsw); x > scanX {
			scanX, hnswLat, scanLat = x, hnsw, scan
		}
		if x := float64(ivfL) / float64(hnsw); x > ivfX {
			ivfX = x
		}
	}
	if scanX < 25 {
		b.Fatalf("hnsw %v is only %.1fx faster than the %v full scan (gate: ≥25x)",
			hnswLat, scanX, scanLat)
	}
	if ivfX < 1 {
		b.Fatalf("hnsw is %.2fx the committed IVF gate point's speed (gate: faster)", ivfX)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = idx.Search(eng, queries[i%len(queries)], 10, 0, 0, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(dst) != 10 {
		b.Fatal("short result")
	}
	// ResetTimer deletes earlier user metrics, so quality reports go last.
	b.ReportMetric(recall, "recall@10")
	b.ReportMetric(scanX, "speedup-x")
}

// BenchmarkHNSWBuild reports parallel graph-construction throughput on the
// gate corpus (one full 100k-row build per iteration).  Not gated — build
// time is an offline cost — but nightly output makes regressions visible.
func BenchmarkHNSWBuild(b *testing.B) {
	store, _ := annGateCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ann.BuildHNSW(store, ann.Config{Kind: ann.KindHNSW, Seed: 19}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(store.Len())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- Overload: goodput under saturation with admission control ---
// One Router deployment with the adaptive admission controller armed is
// probed open-loop for its knee, then each iteration measures one window at
// 2x that knee.  goodput-qps gates higher-is-better (the controller must
// keep completing work under overload) and shed-rate lower-is-better (the
// fraction refused at fixed relative overload is a capacity ratio, stable
// across machines because the knee is measured in the same run).  Any
// untyped failure — an error that is not an rpc.OverloadError shed, or a
// request dropped without a reply — fails the benchmark outright.

func BenchmarkOverloadGoodput(b *testing.B) {
	inst := startInstance(b, "Router", musuite.FrameworkMode{
		Admit: core.AdmitPolicy{MaxInflight: 128},
	})
	const window = 250 * time.Millisecond
	knee := 0.0
	for q, i := 1000.0, 0; i < 12; q, i = 2*q, i+1 {
		res := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
			QPS: q, Duration: window, Seed: 900 + int64(i),
		})
		if res.AchievedQPS > knee {
			knee = res.AchievedQPS
		}
		if res.AchievedQPS < 0.9*q {
			break
		}
	}
	if knee <= 0 {
		b.Fatal("knee probe found zero throughput")
	}
	var goodput float64
	var offered, shed, failed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
			QPS: 2 * knee, Duration: window, Seed: 1000 + int64(i),
		})
		goodput += res.AchievedQPS
		offered += res.Offered
		shed += res.Shed
		failed += res.Errors + res.Dropped
	}
	b.StopTimer()
	if failed > 0 {
		b.Fatalf("%d requests failed untyped under overload (want typed sheds only)", failed)
	}
	b.ReportMetric(goodput/float64(b.N), "goodput-qps")
	b.ReportMetric(float64(shed)/float64(offered), "shed-rate")
}
