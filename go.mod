module musuite

go 1.22
